// Construction-protocol interface shared by the Greedy (Section 3.1) and
// Hybrid (Algorithm 2) algorithms, plus the reconfiguration primitives
// both are built from (attach-under with child displacement, replace-at,
// source contact with displacement of a laxer direct child).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/overlay.hpp"
#include "core/types.hpp"

namespace lagover {

/// Outcome of one pairwise interaction i <-> j initiated by orphan i.
struct InteractionResult {
  /// Did i acquire a parent during this interaction?
  bool attached = false;
  /// Referral for i's next interaction: a node further upstream
  /// ("use k as the next reference"), or kSourceId meaning "contact the
  /// source next" (Algorithm 2's 'refer i to 0'). Empty = ask the Oracle.
  std::optional<NodeId> referral;
};

/// Event counters the protocols maintain; the experiment recorders
/// surface these (e.g. number of reconfigurations under churn).
struct ProtocolCounters {
  std::uint64_t interactions = 0;
  std::uint64_t wasted_interactions = 0;  ///< partner was in i's own group
  std::uint64_t plain_attaches = 0;       ///< i <- j with a free slot
  std::uint64_t displacements = 0;        ///< m <- i <- j child displacement
  std::uint64_t replacements = 0;         ///< j <- i <- k slot replacement
  std::uint64_t child_discards = 0;       ///< hybrid made room by discarding
  std::uint64_t source_attaches = 0;      ///< i <- 0 on free capacity
  std::uint64_t source_replacements = 0;  ///< c <- i <- 0 displacing laxer c
  std::uint64_t failed_source_contacts = 0;
  /// Construction state (referral / cached partner / failover grant)
  /// rejected because it named a previous incarnation of the target —
  /// the epoch fence of the health layer (see health/lease.hpp).
  std::uint64_t stale_epoch_rejections = 0;
};

/// A LagOver construction algorithm: decides what happens when a
/// parentless chain root i interacts with partner j, how i behaves when
/// its timeout fires (direct source contact), and how aggressively
/// connected nodes abandon parents that violate their latency constraint.
class Protocol {
 public:
  explicit Protocol(SourceMode source_mode) : source_mode_(source_mode) {}
  virtual ~Protocol() = default;

  virtual AlgorithmKind kind() const noexcept = 0;

  /// Handles one interaction. Preconditions: i is an online parentless
  /// consumer; j is an online consumer distinct from i. A j inside i's
  /// own group is tolerated (counted as a wasted interaction).
  virtual InteractionResult interact(Overlay& overlay, NodeId i, NodeId j) = 0;

  /// Timeout path (Algorithm 2 steps 2-8): i contacts the source.
  /// Attaches on free capacity; otherwise displaces the laxest direct
  /// child c with l_c > l_i (c becomes i's child when i has a free slot).
  /// Returns true iff i ended up attached to the source.
  bool contact_source(Overlay& overlay, NodeId i);

  /// Maintenance damping: how many consecutive rounds a connected node
  /// tolerates a violated latency constraint before discarding its
  /// parent. Greedy reacts immediately (0); Hybrid waits for a timeout
  /// (Section 3.4's "more aggressive condition" needs damping).
  virtual int maintenance_patience() const noexcept = 0;

  SourceMode source_mode() const noexcept { return source_mode_; }
  const ProtocolCounters& counters() const noexcept { return counters_; }

  /// Counts one epoch-fence rejection (called by the construction core,
  /// which owns the epoch-stamped state the fence guards).
  void note_stale_epoch() noexcept { ++counters_.stale_epoch_rejections; }

  /// Enables/disables the orphaning-displacement move (a strictly laxer
  /// child yields its slot and restarts as a chain root when adoption is
  /// impossible). On by default — without it, saturated group roots
  /// deadlock on capacity-tight workloads (see DESIGN.md); off
  /// approximates the paper's described moves for ablation.
  void set_orphaning_displacement(bool enabled) noexcept {
    orphaning_displacement_ = enabled;
  }
  bool orphaning_displacement() const noexcept {
    return orphaning_displacement_;
  }

  /// Adversary interposition (fault layer): what a *remote* node tells
  /// its peers its DelayAt is. Every admission check that reads another
  /// node's delay goes through claimed_delay(), so a delay-liar's
  /// understatement poisons exactly the decisions that real peers make
  /// from reports — while a node's checks of its OWN delay (maintenance)
  /// keep using ground truth. Null (the default) = everyone honest; the
  /// adversary-free path computes identical results.
  using DelayClaim = std::function<Delay(NodeId node, Delay true_delay)>;
  void set_delay_claim(DelayClaim claim) noexcept {
    delay_claim_ = std::move(claim);
  }

  /// The delay `node` reports to peers (ground truth without a claim
  /// hook; the source never lies).
  Delay claimed_delay(const Overlay& overlay, NodeId node) const {
    const Delay truth = overlay.delay_at(node);
    if (!delay_claim_ || node == kSourceId) return truth;
    return delay_claim_(node, truth);
  }

 protected:
  /// Tries to attach orphan root c directly under p (no displacement).
  /// Checks fanout, cycle-freedom, and the delay bound
  /// DelayAt(p) + 1 <= l_c (optimistic for detached groups).
  bool try_plain_attach(Overlay& overlay, NodeId c, NodeId p);

  /// Tries i <- j, displacing a child m of j (m <- i <- j) when j's
  /// fanout is saturated. `require_greedy_order` additionally demands
  /// l_j <= l_i and l_i <= l_m so the greedy invariant is preserved.
  bool try_attach_with_displacement(Overlay& overlay, NodeId i, NodeId j,
                                    bool require_greedy_order);

  /// Tries j <- i <- k: i takes j's slot under k and adopts j
  /// (Algorithm 2 steps 17/25/31/38). `allow_child_discard` lets i evict
  /// its laxest child to free the slot for j. All latency constraints of
  /// directly affected nodes are checked before mutating.
  bool try_replace_at(Overlay& overlay, NodeId i, NodeId j, NodeId k,
                      bool allow_child_discard);

  /// Picks the child of p with the laxest latency constraint
  /// (ties: highest id for determinism); kNoNode if p has no children.
  static NodeId laxest_child(const Overlay& overlay, NodeId p);

  ProtocolCounters counters_;

 private:
  SourceMode source_mode_;
  bool orphaning_displacement_ = true;
  DelayClaim delay_claim_;
};

}  // namespace lagover
