// Overlay snapshots: serialize a population + tree state to a compact
// line-oriented text format and restore it. Used to checkpoint long
// experiments, diff overlay states in tests, and ship repro cases.
//
// Format (one record per line, '#' comments ignored):
//   lagover-snapshot v1
//   source <fanout>
//   node <id> <fanout> <latency> <online 0|1> <parent id|-)
#pragma once

#include <iosfwd>
#include <string>

#include "core/overlay.hpp"

namespace lagover {

/// Serializes population, online flags, and parent edges.
std::string to_snapshot(const Overlay& overlay);
void write_snapshot(const Overlay& overlay, std::ostream& out);

/// Parses a snapshot and reconstructs the overlay (attaches are replayed
/// parent-first, so fanout/cycle invariants are re-validated on load).
/// Throws InvalidArgument on malformed input or constraint violations.
Overlay from_snapshot(const std::string& text);
Overlay read_snapshot(std::istream& in);

/// Structural equality: same specs, online flags, and parent edges.
bool same_structure(const Overlay& a, const Overlay& b);

}  // namespace lagover
