#include "core/locality.hpp"

#include "common/error.hpp"

namespace lagover {

LocalityMap random_localities(std::size_t consumer_count, int buckets,
                              std::uint64_t seed) {
  LAGOVER_EXPECTS(buckets >= 1);
  Rng rng(seed);
  LocalityMap localities(consumer_count + 1, 0);
  for (std::size_t id = 1; id <= consumer_count; ++id)
    localities[id] = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(buckets)));
  return localities;
}

LocalityBiasedOracle::LocalityBiasedOracle(OracleKind base,
                                           LocalityMap localities,
                                           double bias)
    : base_(base), localities_(std::move(localities)), bias_(bias) {
  LAGOVER_EXPECTS(bias >= 0.0 && bias <= 1.0);
}

std::optional<NodeId> LocalityBiasedOracle::sample_impl(NodeId querier,
                                                        const Overlay& overlay,
                                                        Rng& rng) {
  LAGOVER_EXPECTS(querier < localities_.size());
  const bool restrict_local = rng.bernoulli(bias_);

  // Reservoir sample with the base filter, optionally restricted to the
  // querier's locality.
  auto reservoir = [&](bool local_only) -> std::optional<NodeId> {
    std::optional<NodeId> chosen;
    std::uint64_t seen = 0;
    for (NodeId id = 1; id < overlay.node_count(); ++id) {
      if (!DirectoryOracle::eligible(base_, querier, id, overlay)) continue;
      if (local_only && localities_[id] != localities_[querier]) continue;
      ++seen;
      if (rng.next_below(seen) == 0) chosen = id;
    }
    return chosen;
  };

  if (restrict_local) {
    if (auto local = reservoir(true); local.has_value()) {
      ++local_samples_;
      return local;
    }
    // No same-locality candidate qualifies: fall back globally so the
    // bias never starves construction.
  }
  auto sample = reservoir(false);
  if (sample.has_value()) ++global_samples_;
  return sample;
}

LocalityMetrics compute_locality_metrics(const Overlay& overlay,
                                         const LocalityMap& localities) {
  LAGOVER_EXPECTS(localities.size() >= overlay.node_count());
  LocalityMetrics metrics;
  for (NodeId id = 1; id < overlay.node_count(); ++id) {
    if (!overlay.online(id)) continue;
    const NodeId parent = overlay.parent(id);
    if (parent == kNoNode || parent == kSourceId) continue;
    ++metrics.edges;
    if (localities[id] != localities[parent]) ++metrics.cross_edges;
  }
  if (metrics.edges > 0)
    metrics.cross_fraction = static_cast<double>(metrics.cross_edges) /
                             static_cast<double>(metrics.edges);
  return metrics;
}

}  // namespace lagover
