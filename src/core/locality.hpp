// Locality-aware LagOver construction — the paper's Section 7 future
// work: "building the LagOver based on locality contexts, like clients
// within same domain, ISP or timezone forming the overlay may
// substantially improve the global performance and resource usage".
//
// Consumers carry a locality label (domain / ISP / timezone bucket).
// LocalityBiasedOracle wraps any base Oracle: with probability `bias`
// it restricts the base oracle's filter to same-locality candidates
// (falling back to the unrestricted sample when none qualifies). The
// result is a LagOver whose edges mostly stay inside a locality, which
// the cross-edge metric quantifies.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/oracle.hpp"
#include "core/overlay.hpp"

namespace lagover {

/// Locality label per consumer (index = NodeId; [0] unused). Labels are
/// opaque bucket ids (e.g. ISP index).
using LocalityMap = std::vector<int>;

/// Assigns `buckets` localities uniformly at random to n consumers.
LocalityMap random_localities(std::size_t consumer_count, int buckets,
                              std::uint64_t seed);

/// Oracle decorator biasing samples toward the querier's locality.
class LocalityBiasedOracle final : public Oracle {
 public:
  /// `bias` in [0, 1]: probability that a query is restricted to the
  /// querier's locality. bias = 0 behaves exactly like the base kind.
  LocalityBiasedOracle(OracleKind base, LocalityMap localities, double bias);

  OracleKind kind() const noexcept override { return base_; }

  std::uint64_t local_samples() const noexcept { return local_samples_; }
  std::uint64_t global_samples() const noexcept { return global_samples_; }

 protected:
  std::optional<NodeId> sample_impl(NodeId querier, const Overlay& overlay,
                                    Rng& rng) override;

 private:
  OracleKind base_;
  LocalityMap localities_;
  double bias_;
  std::uint64_t local_samples_ = 0;
  std::uint64_t global_samples_ = 0;
};

/// Locality quality of a (typically converged) overlay.
struct LocalityMetrics {
  std::size_t edges = 0;        ///< consumer->consumer edges (source excluded)
  std::size_t cross_edges = 0;  ///< edges whose endpoints differ in locality
  double cross_fraction = 0.0;
};

LocalityMetrics compute_locality_metrics(const Overlay& overlay,
                                         const LocalityMap& localities);

}  // namespace lagover
