// Pure fanout-greedy baseline (paper Section 3.4, first paragraph):
// "a greedy preference of only fanout would have worked best in keeping
// the dissemination tree depth least and minimizing the achieved
// average latency IF there were no individual and diverse latency
// constraints." This protocol implements exactly that hypothetical —
// high-fanout nodes upstream, latency constraints ignored entirely —
// as a comparison baseline: it builds the shallowest trees and connects
// everyone quickly, but leaves latency-strict consumers violated,
// which is the gap the hybrid algorithm exists to close
// (bench_fanout_baseline).
#pragma once

#include "core/protocol.hpp"

namespace lagover {

class FanoutGreedyProtocol final : public Protocol {
 public:
  explicit FanoutGreedyProtocol(SourceMode source_mode = SourceMode::kPullOnly)
      : Protocol(source_mode) {}

  AlgorithmKind kind() const noexcept override {
    return AlgorithmKind::kFanoutGreedy;
  }

  InteractionResult interact(Overlay& overlay, NodeId i, NodeId j) override;

  /// Latency violations are invisible to this baseline: it never
  /// discards a parent (effectively infinite patience).
  int maintenance_patience() const noexcept override { return 1 << 24; }

 private:
  /// Attach c under p ignoring c's latency constraint (fanout and
  /// cycle checks still apply).
  bool attach_ignoring_latency(Overlay& overlay, NodeId c, NodeId p);
};

}  // namespace lagover
