// The LagOver overlay state: a forest over {source} ∪ consumers that the
// construction algorithms evolve toward a single dissemination tree
// rooted at the source.
//
// Terminology (paper Section 2): each node has at most one parent;
// Parent()/Children()/Root()/DelayAt() mirror Table 1. A node whose
// chain root is the source actually receives the feed; detached groups
// report an *optimistic* delay (their depth within the group + 1,
// i.e. as if the group root were polling the source directly), which is
// the local knowledge a group has while bootstrapping.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace lagover {

/// Structural counters maintained incrementally by Overlay.
struct OverlayCounters {
  std::uint64_t attaches = 0;
  std::uint64_t detaches = 0;
};

/// Mutable overlay (forest) state with structural enforcement of fanout
/// bounds and acyclicity. Algorithms mutate it only through
/// attach/detach/set_offline/set_online, so the invariants checked by
/// audit() hold at every step.
class Overlay {
 public:
  /// Constructs the overlay for a validated population; all consumers
  /// start online and parentless.
  explicit Overlay(Population population);

  /// Copies carry the structure but NOT the edge observers: observers
  /// are wiring installed by the owning engine (e.g. the health layer's
  /// lease book) and must not dangle into it from a snapshot copy.
  Overlay(const Overlay& other);
  Overlay& operator=(const Overlay& other);
  Overlay(Overlay&&) = default;
  Overlay& operator=(Overlay&&) = default;

  // --- population ---------------------------------------------------
  std::size_t consumer_count() const noexcept { return specs_.size() - 1; }
  /// Total node count including the source.
  std::size_t node_count() const noexcept { return specs_.size(); }
  const Population& population() const noexcept { return population_; }

  int fanout_of(NodeId id) const;
  Delay latency_of(NodeId id) const;
  const NodeSpec& spec_of(NodeId id) const;

  // --- structure queries ---------------------------------------------
  /// Parent(), or kNoNode for chain roots and the source.
  NodeId parent(NodeId id) const;
  const std::vector<NodeId>& children(NodeId id) const;
  bool has_parent(NodeId id) const { return parent(id) != kNoNode; }
  int free_fanout(NodeId id) const;

  /// Root(): the top of id's chain (the source if connected). Root of
  /// the source is the source itself.
  NodeId root(NodeId id) const;

  /// True iff Root(id) == source, i.e. the node actually receives the feed.
  bool connected(NodeId id) const { return root(id) == kSourceId; }

  /// DelayAt(): tree depth if connected; depth-within-group + 1
  /// (optimistic) for detached nodes. DelayAt(source) == 0.
  Delay delay_at(NodeId id) const;

  /// Depth of id below its chain root (root itself has depth 0).
  int depth_below_root(NodeId id) const;

  /// True iff `descendant` lies in the subtree rooted at `ancestor`
  /// (a node is its own descendant).
  bool in_subtree(NodeId descendant, NodeId ancestor) const;

  /// All nodes in the subtree rooted at id (preorder), including id.
  std::vector<NodeId> subtree(NodeId id) const;

  // --- online state ----------------------------------------------------
  bool online(NodeId id) const;
  /// Takes a consumer offline: detaches it from its parent and orphans
  /// its children (they become chain roots). No-op if already offline.
  void set_offline(NodeId id);
  /// Brings a consumer back online as a fresh parentless node.
  void set_online(NodeId id);
  std::size_t online_count() const noexcept { return online_count_; }

  // --- mutation --------------------------------------------------------
  /// Attaches `child` (currently parentless, online) under `parent`
  /// (online or the source, with free fanout, not inside child's
  /// subtree). Precondition violations abort; callers use can_attach()
  /// to test first.
  void attach(NodeId child, NodeId parent);

  /// True iff attach(child, parent) would satisfy its preconditions.
  bool can_attach(NodeId child, NodeId parent) const;

  /// Removes `child` from its parent, making it a chain root (its own
  /// subtree stays with it). Precondition: has_parent(child).
  void detach(NodeId child);

  // --- edge observers ---------------------------------------------------
  /// Invoked after every successful attach / before every detach with
  /// (child, parent). Installed by the owning engine (the health layer
  /// records epoch leases through these); nullptr disables. Observers
  /// must not mutate the overlay. Not propagated by copies.
  using EdgeObserver = std::function<void(NodeId child, NodeId parent)>;
  void set_attach_observer(EdgeObserver observer) {
    attach_observer_ = std::move(observer);
  }
  void set_detach_observer(EdgeObserver observer) {
    detach_observer_ = std::move(observer);
  }

  // --- constraint satisfaction ------------------------------------------
  /// True iff id is online, connected, and DelayAt(id) <= l_id.
  bool satisfied(NodeId id) const;

  /// Number of online consumers currently satisfied.
  std::size_t satisfied_count() const;

  /// True iff every online consumer is satisfied ("the LagOver is
  /// constructed").
  bool all_satisfied() const;

  /// Fraction of online consumers satisfied (1.0 when no one is online).
  double satisfied_fraction() const;

  const OverlayCounters& counters() const noexcept { return counters_; }

  // --- diagnostics -----------------------------------------------------
  /// Verifies structural invariants (parent/child symmetry, fanout
  /// bounds, acyclicity, offline nodes detached); aborts with a message
  /// on violation. Cheap enough to call per round in tests.
  void audit() const;

  /// Checks the greedy ordering invariant i <- j ==> l_j <= l_i over all
  /// edges (source edges trivially hold); returns the first offending
  /// child id or kNoNode.
  NodeId first_greedy_order_violation() const;

  /// Multi-line ASCII rendering of the forest (for traces and examples).
  std::string to_ascii() const;

 private:
  void check_id(NodeId id) const;

  Population population_;
  std::vector<NodeSpec> specs_;       // index = id; [0] is the source
  std::vector<NodeId> parent_;        // kNoNode for roots
  std::vector<std::vector<NodeId>> children_;
  std::vector<char> online_;          // [0] always true
  std::size_t online_count_ = 0;      // consumers only
  OverlayCounters counters_;
  EdgeObserver attach_observer_;
  EdgeObserver detach_observer_;
};

}  // namespace lagover
