// Per-node construction behaviour shared by the synchronous round-based
// Engine and the event-driven AsyncEngine: one "orphan step" (timeout /
// referral / Oracle interaction) and one maintenance evaluation, plus
// the per-node bookkeeping both need (timeout counters, violation
// streaks, referrals).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/oracle.hpp"
#include "core/overlay.hpp"
#include "core/protocol.hpp"
#include "core/types.hpp"

namespace lagover {

/// Construction trace events, for tests and the Figure-1 style toy trace.
enum class TraceEventType {
  kChurnLeave,
  kChurnJoin,
  kMaintenanceDetach,
  kSourceContact,
  kInteraction,
  kOracleEmpty,
};

struct TraceEvent {
  Round round = 0;
  TraceEventType type{};
  NodeId subject = kNoNode;
  NodeId partner = kNoNode;
  bool attached = false;  ///< for kInteraction / kSourceContact
};

/// Owns the per-node construction state and executes single steps.
/// Overlay/protocol/oracle are borrowed; the owner guarantees they
/// outlive this object.
class ConstructionCore {
 public:
  ConstructionCore(Overlay& overlay, Protocol& protocol, Oracle& oracle,
                   int timeout_limit);

  /// One step of the `while i is parentless` loop (Algorithm 2 body):
  /// source contact when the timeout fired or a source referral is
  /// pending; otherwise one interaction with the last referral or an
  /// Oracle sample. No-op if i is offline or already has a parent.
  /// `round` only labels trace events. Returns the peer interacted with
  /// (kSourceId for a source contact; kNoNode when nothing happened),
  /// so callers modelling interaction costs know who was contacted.
  NodeId orphan_step(NodeId i, Rng& rng, Round round);

  /// Maintenance evaluation for i: tracks the consecutive-violation
  /// streak and detaches i from its parent once the streak exceeds
  /// `patience` (0 = immediate, the greedy rule). Returns true when a
  /// detach happened. `observed_violated` overrides the live violation
  /// check — used to model stale piggy-backed chain knowledge (paper
  /// Section 2.1.3): the node acts on DelayAt/Root as it believed them
  /// some rounds ago, not as they are now.
  bool maintenance_step(NodeId i, int patience, Round round,
                        std::optional<bool> observed_violated = std::nullopt);

  /// Clears i's timeout counter, violation streak, and referral (used
  /// when a node leaves or rejoins).
  void reset_node(NodeId id);

  void set_trace(std::function<void(const TraceEvent&)> trace) {
    trace_ = std::move(trace);
  }

  std::uint64_t maintenance_detaches() const noexcept {
    return maintenance_detaches_;
  }

  void emit(const TraceEvent& event) {
    if (trace_) trace_(event);
  }

 private:
  Overlay& overlay_;
  Protocol& protocol_;
  Oracle& oracle_;
  int timeout_limit_;
  std::uint64_t maintenance_detaches_ = 0;
  std::function<void(const TraceEvent&)> trace_;

  // Per-node state (index = node id; [0] unused).
  std::vector<int> timeout_counter_;
  std::vector<int> violation_streak_;
  std::vector<NodeId> referral_;      // kNoNode = none
  std::vector<char> pending_source_;  // "refer i to 0"
};

}  // namespace lagover
