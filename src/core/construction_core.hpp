// Per-node construction behaviour shared by the synchronous round-based
// Engine and the event-driven AsyncEngine: one "orphan step" (timeout /
// referral / Oracle interaction) and one maintenance evaluation, plus
// the per-node bookkeeping both need (timeout counters, violation
// streaks, referrals).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/oracle.hpp"
#include "core/overlay.hpp"
#include "core/protocol.hpp"
#include "core/types.hpp"
#include "health/lease.hpp"
#include "sim/simulator.hpp"
#include "telemetry/event_bus.hpp"

namespace lagover {

/// Construction trace events, for tests and the Figure-1 style toy trace.
enum class TraceEventType {
  kChurnLeave,
  kChurnJoin,
  kMaintenanceDetach,
  kSourceContact,
  kInteraction,
  kOracleEmpty,
  /// The interaction request never reached the partner (fault layer:
  /// dropped message, partition, or a stale-Oracle partner that is
  /// already offline).
  kInteractionFailed,
  /// The source-contact request was lost; the node keeps a pending
  /// source referral and retries on its next step.
  kSourceContactFailed,
  /// An attached node missed too many consecutive polls to its parent
  /// (partition / message loss) and re-orphaned itself. Emitted for
  /// both detection policies (fixed-miss and phi-accrual).
  kParentLost,
  /// A node crashed (fault layer). Emitted BEFORE the node is taken
  /// offline, so observers can still see its children.
  kCrash,
  /// A crashed node rejoined, or a churned node re-entered.
  kRejoin,
  /// A parent lease was rejected because the parent re-incarnated
  /// (epoch fence): the child re-orphans without waiting for misses.
  kEpochFenced,
  /// A suspected-orphan re-attached via the local failover ladder
  /// (grandparent hint / cached partner) without consulting the Oracle.
  kFailoverAttach,
  /// The defense ladder barred a node's parent (quarantine/blacklist):
  /// the child abandons it without waiting for missed polls.
  kParentQuarantined,
};

struct TraceEvent {
  Round round = 0;
  TraceEventType type{};
  NodeId subject = kNoNode;
  NodeId partner = kNoNode;
  bool attached = false;  ///< for kInteraction / kSourceContact
  /// Event time: simulation time in the async engine, the round number
  /// in the synchronous one. Filled by ConstructionCore::emit when
  /// negative (the emitter's clock, or `round` as a fallback).
  SimTime when = -1.0;
  /// Subject's incarnation at emission time; stamped by
  /// ConstructionCore::emit when an epoch probe is installed
  /// (kNoEpoch otherwise).
  health::Epoch epoch = health::kNoEpoch;
  /// Optional cause tag ("missed_polls", "stale_lease", "outage", ...)
  /// set by emission sites that can distinguish why the event fired.
  const char* cause = "";
};

/// Stable lower_snake name of a trace event type, used by the JSONL /
/// Chrome-trace exporters and the per-event-type metrics counters.
const char* to_string(TraceEventType type) noexcept;

/// The engines' multi-subscriber trace sink: recorders, validators,
/// and exporters all listen on the same bus without engine changes.
using TraceBus = telemetry::EventBus<TraceEvent>;

/// Result of one orphan step, for callers that model interaction costs
/// and retry policies.
struct StepOutcome {
  /// Peer the node tried to reach (kSourceId for a source contact,
  /// kNoNode when the Oracle starved the node).
  NodeId partner = kNoNode;
  /// False when the fault layer lost the request (or the partner turned
  /// out to be dead) — the step made no protocol progress and the
  /// caller should apply its retry/backoff policy.
  bool delivered = true;
  /// Did i end the step with a parent?
  bool attached = false;

  /// Convenience: partner for the legacy NodeId-returning contract.
  operator NodeId() const noexcept { return partner; }
};

/// Owns the per-node construction state and executes single steps.
/// Overlay/protocol/oracle are borrowed; the owner guarantees they
/// outlive this object.
class ConstructionCore {
 public:
  ConstructionCore(Overlay& overlay, Protocol& protocol, Oracle& oracle,
                   int timeout_limit);

  /// Transport check consulted before every interaction / source
  /// contact: does a request from `from` reach `to` right now? Null
  /// (the default) = perfect transport; the fault-free path is
  /// untouched.
  using DeliveryProbe = std::function<bool(NodeId from, NodeId to)>;
  void set_delivery_probe(DeliveryProbe probe) {
    delivery_probe_ = std::move(probe);
  }

  /// Is the Oracle currently in an outage window? Gated fallback: only
  /// while this returns true does an empty Oracle answer fall back to
  /// the node's cache of recently seen partners, so fault-free runs
  /// keep the paper's exact starvation semantics.
  using OutageProbe = std::function<bool()>;
  void set_oracle_outage_probe(OutageProbe probe) {
    oracle_outage_probe_ = std::move(probe);
  }

  /// Current epoch (incarnation) of a node, from the owning engine's
  /// EpochBook. When installed, referrals and cached partners are
  /// stamped with the epoch they were learned under and fenced (dropped,
  /// counted via Protocol::note_stale_epoch) when the named node has
  /// since re-incarnated. Null (the default) disables stamping — the
  /// churn-only paths stay byte-identical.
  using EpochProbe = std::function<health::Epoch(NodeId)>;
  void set_epoch_probe(EpochProbe probe) { epoch_probe_ = std::move(probe); }

  /// Clock used to stamp TraceEvent::when (the async engine installs
  /// sim.now). Without one, `when` falls back to the round number.
  using Clock = std::function<SimTime()>;
  void set_clock(Clock clock) { clock_ = std::move(clock); }

  /// Byzantine fanout-liar probe (adversary layer): does `partner`
  /// reject the attach request it solicited? Consulted after transport
  /// succeeds but before the interaction runs — the request *arrived*,
  /// the partner just refused it. Null (the default) = nobody refuses.
  using ByzantineRejectProbe = std::function<bool(NodeId partner)>;
  void set_byzantine_reject_probe(ByzantineRejectProbe probe) {
    byzantine_reject_probe_ = std::move(probe);
  }

  /// Defense-ladder candidate filter: false = the named node is barred
  /// (quarantined/blacklisted) and must not be used as a referral,
  /// cached fallback, or failover candidate. Null = everyone usable.
  using CandidateFilter = std::function<bool(NodeId candidate)>;
  void set_candidate_filter(CandidateFilter filter) {
    candidate_filter_ = std::move(filter);
  }

  /// Suspicion evidence sink (defense ladder): called when this core
  /// observes adversarial behaviour first-hand (e.g. a solicited attach
  /// rejected). Null = no defense layer listening.
  using SuspicionReporter =
      std::function<void(NodeId suspect, NodeId reporter, const char* cause)>;
  void set_suspicion_reporter(SuspicionReporter reporter) {
    suspicion_reporter_ = std::move(reporter);
  }

  /// One step of the `while i is parentless` loop (Algorithm 2 body):
  /// source contact when the timeout fired or a source referral is
  /// pending; otherwise one interaction with the last referral or an
  /// Oracle sample. No-op if i is offline or already has a parent.
  /// `round` only labels trace events.
  StepOutcome orphan_step(NodeId i, Rng& rng, Round round);

  /// Maintenance evaluation for i: tracks the consecutive-violation
  /// streak and detaches i from its parent once the streak exceeds
  /// `patience` (0 = immediate, the greedy rule). Returns true when a
  /// detach happened. `observed_violated` overrides the live violation
  /// check — used to model stale piggy-backed chain knowledge (paper
  /// Section 2.1.3): the node acts on DelayAt/Root as it believed them
  /// some rounds ago, not as they are now.
  bool maintenance_step(NodeId i, int patience, Round round,
                        std::optional<bool> observed_violated = std::nullopt);

  /// Local failover ladder (health layer): a node that just lost its
  /// parent to a suspected crash tries to re-attach WITHOUT a round trip
  /// to the Oracle — first under `grandparent_hint` (its late parent's
  /// parent, piggy-backed on earlier poll replies; kNoNode = none), then
  /// under each cached recent partner. A candidate is taken only when it
  /// is online, structurally attachable, keeps i's delay bound
  /// (DelayAt(c) + 1 <= l_i), passes the delivery probe, and — when an
  /// epoch probe is installed — has not re-incarnated since i learned of
  /// it. Deterministic (no RNG). Returns true on re-attach (emits
  /// kFailoverAttach); false sends the caller down the Oracle path.
  bool failover_step(NodeId i, NodeId grandparent_hint, Round round);

  /// Clears i's timeout counter, violation streak, and referral (used
  /// when a node leaves or rejoins).
  void reset_node(NodeId id);

  /// Single-observer hook for direct-core users (tests, the toy
  /// trace). Engine-owned cores publish through the trace bus instead.
  void set_trace(std::function<void(const TraceEvent&)> trace) {
    trace_ = std::move(trace);
  }

  /// Installs the owning engine's trace bus (borrowed; nullptr
  /// detaches). Every emitted event is published to it, so any number
  /// of recorders / validators / exporters can subscribe — and a core
  /// rebuilt around a new oracle re-attaches to the same bus, which
  /// keeps subscriptions alive across set_oracle().
  void set_trace_bus(TraceBus* bus) noexcept { bus_ = bus; }

  std::uint64_t maintenance_detaches() const noexcept {
    return maintenance_detaches_;
  }
  std::uint64_t failover_attaches() const noexcept {
    return failover_attaches_;
  }

  /// Stamps `when` (emitter clock / round fallback) and the subject's
  /// epoch, mirrors the event into the global telemetry stream, then
  /// delivers to the single-observer hook and the trace bus.
  void emit(TraceEvent event);

  /// Re-orphans `id` after a suspicion or epoch fence and emits the
  /// event — the shared half of both engines' detach-on-suspicion
  /// paths (engine-specific bookkeeping stays with the engines).
  void detach_suspected(NodeId id, NodeId parent, Round round,
                        TraceEventType type);

  /// Partners node i interacted with most recently (most recent first),
  /// the fallback pool during Oracle outages and the failover ladder.
  /// By value: the cache is stored epoch-stamped internally.
  std::vector<NodeId> recent_partners(NodeId i) const;

 private:
  /// A cached peer plus the incarnation it was learned under (kNoEpoch
  /// when no epoch probe is installed).
  struct CachedPartner {
    NodeId node = kNoNode;
    health::Epoch epoch = health::kNoEpoch;
  };

  void remember_partner(NodeId i, NodeId partner);

  /// True iff the epoch fence rejects `stamped` as naming a previous
  /// incarnation of `node`. Counts the rejection on the protocol.
  bool fenced(NodeId node, health::Epoch stamped);

  /// How many recently seen partners each node remembers as its Oracle
  /// -outage fallback.
  static constexpr std::size_t kPartnerCacheSize = 4;

  Overlay& overlay_;
  Protocol& protocol_;
  Oracle& oracle_;
  int timeout_limit_;
  std::uint64_t maintenance_detaches_ = 0;
  std::uint64_t failover_attaches_ = 0;
  std::function<void(const TraceEvent&)> trace_;
  TraceBus* bus_ = nullptr;
  DeliveryProbe delivery_probe_;
  OutageProbe oracle_outage_probe_;
  EpochProbe epoch_probe_;
  Clock clock_;
  ByzantineRejectProbe byzantine_reject_probe_;
  CandidateFilter candidate_filter_;
  SuspicionReporter suspicion_reporter_;

  // Per-node state (index = node id; [0] unused).
  std::vector<int> timeout_counter_;
  std::vector<int> violation_streak_;
  std::vector<NodeId> referral_;            // kNoNode = none
  std::vector<health::Epoch> referral_epoch_;
  std::vector<char> pending_source_;        // "refer i to 0"
  std::vector<std::vector<CachedPartner>> recent_partners_;
};

}  // namespace lagover
