#include "core/optimizer.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace lagover {

std::vector<std::size_t> free_slot_depth_profile(const Overlay& overlay) {
  std::vector<std::size_t> profile;
  auto add = [&](Delay child_depth, int slots) {
    if (slots <= 0) return;
    if (static_cast<std::size_t>(child_depth) >= profile.size())
      profile.resize(static_cast<std::size_t>(child_depth) + 1, 0);
    profile[static_cast<std::size_t>(child_depth)] +=
        static_cast<std::size_t>(slots);
  };
  add(1, overlay.free_fanout(kSourceId));
  for (NodeId id = 1; id < overlay.node_count(); ++id) {
    if (!overlay.online(id) || !overlay.connected(id)) continue;
    add(overlay.delay_at(id) + 1, overlay.free_fanout(id));
  }
  return profile;
}

std::size_t shallow_free_slots(const Overlay& overlay, Delay max_depth) {
  const auto profile = free_slot_depth_profile(overlay);
  std::size_t total = 0;
  for (std::size_t d = 0;
       d < profile.size() && d <= static_cast<std::size_t>(max_depth); ++d)
    total += profile[d];
  return total;
}

OptimizeReport optimize_shallow_capacity(Overlay& overlay,
                                         bool preserve_greedy_order) {
  OptimizeReport report;
  bool improved = true;
  while (improved) {
    improved = false;
    ++report.passes;
    for (NodeId leaf = 1; leaf < overlay.node_count(); ++leaf) {
      if (!overlay.online(leaf) || !overlay.children(leaf).empty()) continue;
      if (!overlay.has_parent(leaf) || !overlay.connected(leaf)) continue;
      const Delay current = overlay.delay_at(leaf);
      const Delay budget = overlay.latency_of(leaf);
      if (current >= budget) continue;  // already as deep as allowed

      // Deepest legal host strictly below the leaf's current depth.
      NodeId best = kNoNode;
      Delay best_depth = current;
      auto consider = [&](NodeId host) {
        if (host == leaf) return;
        if (!overlay.online(host) || !overlay.connected(host)) return;
        if (overlay.free_fanout(host) <= 0) return;
        const Delay child_depth = overlay.delay_at(host) + 1;
        if (child_depth <= best_depth || child_depth > budget) return;
        if (preserve_greedy_order &&
            overlay.latency_of(host) > overlay.latency_of(leaf))
          return;
        best = host;
        best_depth = child_depth;
      };
      for (NodeId host = 1; host < overlay.node_count(); ++host)
        consider(host);

      if (best == kNoNode) continue;
      overlay.detach(leaf);
      LAGOVER_ASSERT(overlay.can_attach(leaf, best));
      overlay.attach(leaf, best);
      ++report.moves;
      improved = true;
    }
  }
  // The loop counts the final no-move sweep as a pass; report only the
  // productive ones.
  if (report.passes > 0) --report.passes;
  return report;
}

}  // namespace lagover
