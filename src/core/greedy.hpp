// Greedy LagOver construction (paper Section 3.1).
//
// The paper defers greedy's pseudocode to its extended version; this
// implementation reconstructs it from the three stated principles and
// the invariant the paper proves the maintenance lemma against:
//
//   i <- j  ==>  l_j <= l_i      (parents are at least as strict)
//
// Interaction rules: peers with stricter delay constraints are pushed
// upstream. Orphan-orphan interactions merge groups with the stricter
// node as parent; meeting a connected, stricter-or-equal node j, i tries
// to become j's child (displacing a laxer child m when j is full);
// meeting a laxer node j, i tries to take j's slot under j's parent
// (reconfiguration "upon encountering peers with stricter delay
// constraints"); otherwise i is referred upstream to Parent(j).
#pragma once

#include "core/protocol.hpp"

namespace lagover {

class GreedyProtocol final : public Protocol {
 public:
  explicit GreedyProtocol(SourceMode source_mode = SourceMode::kPullOnly)
      : Protocol(source_mode) {}

  AlgorithmKind kind() const noexcept override {
    return AlgorithmKind::kGreedy;
  }

  InteractionResult interact(Overlay& overlay, NodeId i, NodeId j) override;

  /// Greedy reacts to a violated constraint immediately: under the
  /// ordering invariant the first violated node in a chain observes
  /// exactly DelayAt = l + 1 (Section 3.2 lemma), so no damping is needed.
  int maintenance_patience() const noexcept override { return 0; }

 private:
  InteractionResult merge_orphan_groups(Overlay& overlay, NodeId i, NodeId j);
};

}  // namespace lagover
