// Post-construction slack optimization (an extension in the spirit of
// the paper's maintenance operations): a converged LagOver often parks
// lax nodes in shallow slots that only latency-strict nodes *need*;
// relocating leaves as deep as their constraints allow frees that
// shallow capacity. Measured caveat (bench_flash_crowd): the freed
// capacity does NOT speed up flash-crowd absorption, because the
// construction algorithms' orphaning-displacement move already reclaims
// shallow slots on demand — the optimizer's value is as an explicit
// headroom knob (shallow_free_slots) rather than a convergence
// accelerator.
#pragma once

#include <cstddef>
#include <vector>

#include "core/overlay.hpp"

namespace lagover {

struct OptimizeReport {
  int moves = 0;          ///< leaf relocations performed
  int passes = 0;         ///< sweeps until fixpoint
};

/// Repeatedly moves connected leaves to the deepest position their
/// latency constraint allows (strictly deeper than where they are),
/// until no move improves. Satisfaction is preserved by construction:
/// a move never violates the moved leaf (target depth <= l) and cannot
/// affect anyone else's depth (only leaves move).
///
/// `preserve_greedy_order` additionally requires the new parent to be
/// at least as strict (keeps Overlay::first_greedy_order_violation()
/// clean on greedy-built trees).
OptimizeReport optimize_shallow_capacity(Overlay& overlay,
                                         bool preserve_greedy_order = false);

/// Free child slots by the depth a new child would occupy:
/// profile[d] = open slots whose occupant would sit at depth d
/// (profile[1] = free source slots). Only online, connected hosts count.
std::vector<std::size_t> free_slot_depth_profile(const Overlay& overlay);

/// Sum of free slots at child-depth <= max_depth (the scarce capacity).
std::size_t shallow_free_slots(const Overlay& overlay, Delay max_depth);

}  // namespace lagover
