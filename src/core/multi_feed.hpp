// Multiple feeds over intersecting consumers — the paper's Section 7
// future work ("Reusing part of the LagOver for multiple sources by
// exploiting intersecting consumers" and the multipath-video
// application where "each peer participates in multiple LagOvers with
// different time constraints").
//
// Each consumer has ONE total fanout budget (its upload capacity) and a
// set of subscriptions, each with its own latency constraint. The
// system splits every consumer's budget across the feeds it subscribes
// to (even or demand-weighted), runs one construction engine per feed,
// and enforces the invariant that the summed per-feed children of a
// consumer never exceed its total budget.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/engine.hpp"
#include "core/types.hpp"

namespace lagover {

struct FeedSubscription {
  std::size_t feed = 0;
  Delay latency = 1;  ///< tolerated delay for this feed
};

struct MultiConsumerSpec {
  NodeId id = kNoNode;  ///< global consumer id (1..N)
  int total_fanout = 0;
  std::vector<FeedSubscription> subscriptions;
};

/// How a consumer's total fanout is split across its feeds.
enum class BudgetPolicy {
  kEven,            ///< equal share per subscribed feed
  kDemandWeighted,  ///< shares proportional to each feed's population
};

struct MultiFeedConfig {
  EngineConfig engine;  ///< per-feed engine parameters (seed is offset)
  BudgetPolicy policy = BudgetPolicy::kEven;
};

/// Aggregate state of a multi-feed run.
struct MultiFeedStats {
  std::vector<double> per_feed_satisfied;  ///< fraction per feed
  /// Fraction of consumers with every subscription satisfied.
  double fully_served_fraction = 0.0;
  std::size_t fully_served = 0;
  std::size_t consumers = 0;
};

/// Owns one Engine per feed plus the global-budget bookkeeping.
class MultiFeedSystem {
 public:
  /// `source_fanouts[f]` is feed f's source capacity. Consumer ids must
  /// be 1..N in order; subscriptions must reference valid feeds and
  /// carry latency >= 1. Throws InvalidArgument otherwise.
  MultiFeedSystem(std::vector<int> source_fanouts,
                  std::vector<MultiConsumerSpec> consumers,
                  MultiFeedConfig config);

  std::size_t feed_count() const noexcept { return engines_.size(); }
  std::size_t consumer_count() const noexcept { return consumers_.size(); }

  const Engine& engine(std::size_t feed) const;
  Engine& engine(std::size_t feed);

  /// The per-feed fanout share allocated to a consumer for a feed it
  /// subscribes to (0 when not subscribed).
  int allocated_fanout(NodeId consumer, std::size_t feed) const;

  /// Runs one construction round on every feed's engine.
  void run_round();

  /// Rounds until every subscription of every consumer is satisfied, or
  /// nullopt after max_rounds.
  std::optional<Round> run_until_converged(Round max_rounds);

  MultiFeedStats stats() const;

  /// True iff every subscription of `consumer` is satisfied.
  bool fully_served(NodeId consumer) const;

  /// Verifies the shared-budget invariant: summed per-feed children of
  /// each consumer <= its total fanout. Aborts on violation.
  void audit_budgets() const;

 private:
  std::vector<MultiConsumerSpec> consumers_;
  MultiFeedConfig config_;
  std::vector<std::unique_ptr<Engine>> engines_;
  // Per feed: global id -> per-feed id (kNoNode when not subscribed),
  // and per-feed id -> global id.
  std::vector<std::vector<NodeId>> to_local_;
  std::vector<std::vector<NodeId>> to_global_;
  // allocation_[feed][global id] = fanout share.
  std::vector<std::vector<int>> allocation_;
  Round round_ = 0;
};

}  // namespace lagover
