#include "core/types.hpp"

#include "common/error.hpp"

namespace lagover {

std::string to_string(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kGreedy: return "greedy";
    case AlgorithmKind::kHybrid: return "hybrid";
    case AlgorithmKind::kFanoutGreedy: return "fanout-greedy";
  }
  return "?";
}

std::string to_string(OracleKind kind) {
  switch (kind) {
    case OracleKind::kRandom: return "Random";
    case OracleKind::kRandomCapacity: return "Random-Capacity";
    case OracleKind::kRandomDelayCapacity: return "Random-Delay-Capacity";
    case OracleKind::kRandomDelay: return "Random-Delay";
  }
  return "?";
}

std::string to_string(SourceMode mode) {
  switch (mode) {
    case SourceMode::kPullOnly: return "pull-only";
    case SourceMode::kPush: return "push";
  }
  return "?";
}

std::string paper_label(OracleKind kind) {
  switch (kind) {
    case OracleKind::kRandom: return "O1";
    case OracleKind::kRandomCapacity: return "O2a";
    case OracleKind::kRandomDelayCapacity: return "O2b";
    case OracleKind::kRandomDelay: return "O3";
  }
  return "?";
}

std::string to_notation(const NodeSpec& spec) {
  return std::to_string(spec.id) + "_" +
         std::to_string(spec.constraints.fanout) + "^" +
         std::to_string(spec.constraints.latency);
}

void validate(const Population& population) {
  if (population.source_fanout < 0)
    throw InvalidArgument("source fanout must be non-negative");
  for (std::size_t k = 0; k < population.consumers.size(); ++k) {
    const NodeSpec& spec = population.consumers[k];
    if (spec.id != static_cast<NodeId>(k + 1))
      throw InvalidArgument("consumer ids must be 1..N in order");
    if (spec.constraints.fanout < 0)
      throw InvalidArgument("fanout must be non-negative for node " +
                            std::to_string(spec.id));
    if (spec.constraints.latency < 1)
      throw InvalidArgument("latency constraint must be >= 1 for node " +
                            std::to_string(spec.id));
  }
}

}  // namespace lagover
