// The Oracles of Section 2.1.4: partial-global-information services that
// hand an enquiring node a random interaction partner. The paper's
// evaluation (Section 5.2) compares four filters; the abstract interface
// here is what the construction engine consumes, and src/dht + src/gossip
// provide distributed realizations of the same interface.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "core/overlay.hpp"
#include "core/types.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"

namespace lagover {

/// Statistics every oracle keeps so experiments can report how often the
/// oracle failed to find any suitable partner (the Algorithm 2 step-13
/// exception — a key effect behind O2a/O2b's poor convergence).
struct OracleStats {
  std::uint64_t queries = 0;
  std::uint64_t empty_results = 0;
};

/// Interface: given the querying node and the current overlay, return a
/// random partner satisfying the oracle's filter, or nullopt when no
/// node qualifies ("the peer needs to wait and try again").
class Oracle {
 public:
  virtual ~Oracle() = default;

  std::optional<NodeId> sample(NodeId querier, const Overlay& overlay,
                               Rng& rng) {
    TELEM_SCOPE("oracle.sample");
    ++stats_.queries;
    TELEM_COUNT("oracle.queries", 1);
    auto result = sample_impl(querier, overlay, rng);
    if (!result.has_value()) {
      ++stats_.empty_results;
      TELEM_COUNT("oracle.empty_results", 1);
    }
    return result;
  }

  const OracleStats& stats() const noexcept { return stats_; }
  virtual OracleKind kind() const noexcept = 0;

 protected:
  virtual std::optional<NodeId> sample_impl(NodeId querier,
                                            const Overlay& overlay,
                                            Rng& rng) = 0;

 private:
  OracleStats stats_;
};

/// Centralized (directory-style) oracle: scans the membership and picks
/// uniformly among nodes passing the configured filter. This is the
/// idealized oracle the paper simulates; it is also the behaviour the
/// DHT-backed directory converges to.
class DirectoryOracle final : public Oracle {
 public:
  explicit DirectoryOracle(OracleKind kind) : kind_(kind) {}

  OracleKind kind() const noexcept override { return kind_; }

  /// The filter predicate, exposed for reuse by distributed realizations:
  /// does `candidate` qualify as a partner for `querier` under `kind`?
  /// Candidates must be online consumers distinct from the querier; the
  /// source is never returned (source contact is the timeout path).
  static bool eligible(OracleKind kind, NodeId querier, NodeId candidate,
                       const Overlay& overlay);

 private:
  std::optional<NodeId> sample_impl(NodeId querier, const Overlay& overlay,
                                    Rng& rng) override;

  OracleKind kind_;
};

/// Factory for the centralized oracle variants.
std::unique_ptr<Oracle> make_oracle(OracleKind kind);

}  // namespace lagover
