// Existence of a LagOver for a given population (paper Section 3.3).
//
// The paper's sufficient condition processes latency classes N_l in
// order: class l can be hosted if |N_l| does not exceed the fanout of
// class N_{l-1} plus the surplus capacity carried from earlier classes.
// The condition is sufficient but NOT necessary (Section 3.3.1), so we
// also provide an exact feasibility test: choose a depth d_i in [1, l_i]
// for every node so that the number of nodes at depth d never exceeds
// the total fanout of nodes at depth d-1 (depth 0 = the source). The
// exact test uses earliest-deadline-first placement with
// largest-fanout-first filling of leftover capacity, which is optimal
// here because unused capacity at a level is lost while placing a node
// earlier only helps; a brute-force enumerator cross-checks this in the
// test suite.
#pragma once

#include <optional>
#include <vector>

#include "core/overlay.hpp"
#include "core/types.hpp"

namespace lagover {

/// Per-latency-class accounting of the paper's sufficient condition.
struct SufficiencyLevel {
  Delay latency = 0;       ///< the class N_l
  std::size_t demand = 0;  ///< |N_l|
  long capacity = 0;       ///< fanout of N_{l-1} + carried surplus
  long surplus = 0;        ///< capacity - demand (what carries forward)
};

struct SufficiencyReport {
  bool holds = false;
  /// First latency class whose demand exceeds capacity (meaningful only
  /// when !holds).
  Delay failing_level = 0;
  std::vector<SufficiencyLevel> levels;
};

/// Evaluates the paper's sufficient condition for existence of a LagOver.
SufficiencyReport sufficiency_condition(const Population& population);

/// Exact feasibility: is there any tree satisfying every latency and
/// fanout constraint? Returns the depth assignment (index = consumer
/// id - 1) of a witness, or nullopt when infeasible.
std::optional<std::vector<int>> feasible_depths(const Population& population);

/// True iff feasible_depths() finds a witness.
bool exactly_feasible(const Population& population);

/// Materializes a witness depth assignment as a concrete satisfied
/// Overlay (children distributed over the previous level's open slots).
/// Precondition: `depths` came from feasible_depths(population).
Overlay build_witness_overlay(const Population& population,
                              const std::vector<int>& depths);

/// Exponential-time reference implementation for cross-checking
/// feasible_depths on small populations (tests only).
/// Precondition: population.size() <= 12.
bool brute_force_feasible(const Population& population);

/// Smallest source fanout for which the population is exactly feasible,
/// or nullopt if even fanout = population size does not suffice.
std::optional<int> minimum_source_fanout(Population population);

}  // namespace lagover
