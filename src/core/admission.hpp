// Oracle admission control (ROADMAP "production system": the overlay
// exists to solve the bandwidth overload problem, so the Oracle itself
// must survive being hammered). A windowed request-rate limiter with a
// three-state circuit breaker fronts the Oracle:
//
//   closed     — queries admitted until the window budget is spent;
//                over-budget queries are answered from a small cache of
//                recently returned partners ("stale serving") or
//                rejected with retry-after advice.
//   open       — tripped after `breaker_trip_windows` consecutive
//                saturated windows: every query is rejected outright
//                and the engines' cached-partner fallback takes over
//                (the same path Oracle outage windows use).
//   half-open  — after `breaker_cooldown`, probe traffic is admitted
//                again; one saturated window re-opens the breaker,
//                `breaker_close_windows` clean windows close it
//                (hysteresis on recovery).
//
// Engines honor rejections through their existing backoff machinery
// (exponential retry the fault layer also uses), so a flash crowd of
// orphans spreads out instead of synchronously stampeding the Oracle —
// and, via the timeout path, the source.
//
// An AdmissionConfig with no rate limit is "empty" and is normalized
// away by the engines: no wrapper installs, no RNG-stream change, runs
// stay byte-identical to an admission-free engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/oracle.hpp"
#include "core/overlay.hpp"
#include "sim/simulator.hpp"

namespace lagover {

/// Tunables of the Oracle admission layer. rate_limit <= 0 disables the
/// whole layer (empty()).
struct AdmissionConfig {
  /// Queries admitted per accounting window; <= 0 = unlimited (off).
  double rate_limit = 0.0;
  /// Accounting window length in engine time units.
  double window = 5.0;
  /// Wait a rejected node is advised before retrying (engines scale it
  /// by their exponential backoff).
  double retry_after = 2.0;
  /// Consecutive saturated windows before the breaker opens.
  int breaker_trip_windows = 3;
  /// Time the breaker stays open before admitting probe traffic.
  double breaker_cooldown = 20.0;
  /// Consecutive clean (unsaturated) half-open windows before the
  /// breaker closes again — hysteresis so recovery does not flap.
  int breaker_close_windows = 2;
  /// Over-budget queries are answered from the stale-sample cache when
  /// possible (degraded service) instead of rejected outright.
  bool serve_stale = true;

  bool empty() const noexcept { return rate_limit <= 0.0; }
};

/// Windowed rate accounting + circuit breaker. Pure bookkeeping: no RNG,
/// deterministic given the query time sequence.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  enum class Verdict {
    kAdmit,  ///< within budget — pass through to the Oracle
    kStale,  ///< over budget — serve from the stale cache if possible
    kReject, ///< rejected; retry after retry_after (scaled by backoff)
  };

  /// Accounts one query at time `now` and rules on it.
  Verdict on_query(double now);

  /// Is the breaker open right now? (Performs the open -> half-open
  /// transition when the cooldown has elapsed, mirroring on_query.)
  /// While open, engines treat the Oracle like an outage window: the
  /// cached-partner fallback serves instead.
  bool open(double now) noexcept;

  double retry_after() const noexcept { return config_.retry_after; }
  const AdmissionConfig& config() const noexcept { return config_; }

  std::uint64_t admitted() const noexcept { return admitted_; }
  std::uint64_t rejected() const noexcept { return rejected_; }
  std::uint64_t stale_verdicts() const noexcept { return stale_verdicts_; }
  std::uint64_t breaker_trips() const noexcept { return breaker_trips_; }
  std::uint64_t breaker_closes() const noexcept { return breaker_closes_; }

 private:
  enum class Breaker { kClosed, kOpen, kHalfOpen };

  /// Advances window accounting to the window containing `now`,
  /// evaluating every window boundary crossed on the way.
  void roll_to(double now);
  /// Saturation-streak bookkeeping and state transitions at one window
  /// boundary.
  void close_window();
  void trip(double now);

  AdmissionConfig config_;
  Breaker state_ = Breaker::kClosed;
  std::int64_t window_index_ = 0;
  bool started_ = false;
  std::uint64_t window_count_ = 0;
  bool window_saturated_ = false;
  int saturated_streak_ = 0;
  int clean_streak_ = 0;
  double opened_at_ = 0.0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t stale_verdicts_ = 0;
  std::uint64_t breaker_trips_ = 0;
  std::uint64_t breaker_closes_ = 0;
};

/// Oracle decorator enforcing admission control at the service edge.
/// Admitted queries pass through to the inner Oracle (whose answers
/// refresh the stale cache); over-budget queries are served from the
/// cache of recently returned partners — a stale but plausible sample,
/// re-checked against the live overlay — and rejected queries return
/// empty with a pending-rejection flag the engines consume to drive
/// their backoff. The stale/reject paths draw no RNG.
class AdmittedOracle final : public Oracle {
 public:
  /// `clock` supplies the current engine time (sim.now() async, the
  /// round number for the synchronous engine).
  AdmittedOracle(std::unique_ptr<Oracle> inner,
                 std::shared_ptr<AdmissionController> control,
                 std::function<SimTime()> clock);

  OracleKind kind() const noexcept override { return inner_->kind(); }
  const Oracle& inner() const noexcept { return *inner_; }
  const AdmissionController& control() const noexcept { return *control_; }

  /// True when the most recent sample was rejected (not merely empty);
  /// reading clears the flag. Engines call this right after an orphan
  /// step to decide between normal retry and admission backoff.
  bool consume_rejection() noexcept {
    const bool rejected = rejection_pending_;
    rejection_pending_ = false;
    return rejected;
  }

  std::uint64_t stale_served() const noexcept { return stale_served_; }

 protected:
  std::optional<NodeId> sample_impl(NodeId querier, const Overlay& overlay,
                                    Rng& rng) override;

 private:
  void remember(NodeId partner);

  /// Recently returned partners kept for stale serving.
  static constexpr std::size_t kStaleCacheSize = 8;

  std::unique_ptr<Oracle> inner_;
  std::shared_ptr<AdmissionController> control_;
  std::function<SimTime()> clock_;
  std::vector<NodeId> stale_cache_;  ///< most recent first
  bool rejection_pending_ = false;
  std::uint64_t stale_served_ = 0;
};

}  // namespace lagover
