#include "core/validator.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "telemetry/metrics.hpp"

namespace lagover {

std::string to_string(NodeIssue issue) {
  switch (issue) {
    case NodeIssue::kNone: return "satisfied";
    case NodeIssue::kOffline: return "offline";
    case NodeIssue::kParentless: return "parentless";
    case NodeIssue::kDisconnected: return "in detached group";
    case NodeIssue::kDelayExceeded: return "delay exceeds constraint";
  }
  return "?";
}

ValidationReport validate_overlay(const Overlay& overlay) {
  ValidationReport report;
  report.consumers = overlay.consumer_count();
  for (NodeId id = 1; id < overlay.node_count(); ++id) {
    NodeDiagnosis diagnosis;
    diagnosis.node = id;
    diagnosis.delay = overlay.delay_at(id);
    diagnosis.constraint = overlay.latency_of(id);

    if (!overlay.online(id)) {
      diagnosis.issue = NodeIssue::kOffline;
    } else if (!overlay.has_parent(id)) {
      diagnosis.issue = NodeIssue::kParentless;
    } else if (!overlay.connected(id)) {
      diagnosis.issue = NodeIssue::kDisconnected;
    } else if (diagnosis.delay > diagnosis.constraint) {
      diagnosis.issue = NodeIssue::kDelayExceeded;
    } else {
      diagnosis.issue = NodeIssue::kNone;
      ++report.satisfied;
      continue;
    }
    report.issues.push_back(diagnosis);
  }
  return report;
}

std::string ValidationReport::to_string() const {
  std::ostringstream out;
  out << satisfied << '/' << consumers << " consumers satisfied";
  if (issues.empty()) {
    out << " — LagOver constructed\n";
    return out.str();
  }
  out << "; " << issues.size() << " issue(s):\n";
  for (const NodeDiagnosis& diagnosis : issues) {
    out << "  node " << diagnosis.node << ": "
        << lagover::to_string(diagnosis.issue) << " (delay "
        << diagnosis.delay << ", constraint " << diagnosis.constraint
        << ")\n";
  }
  return out.str();
}

EpochAudit audit_epochs(const Overlay& overlay,
                        const health::EpochBook& epochs) {
  EpochAudit audit;
  const std::size_t n = overlay.node_count();
  for (NodeId id = 1; id < n; ++id) {
    const NodeId parent = overlay.parent(id);
    if (parent == kNoNode) continue;
    if (!epochs.has_lease(id)) {
      audit.unleased_edges.push_back(id);
      continue;
    }
    if (!epochs.lease_valid(id, parent)) audit.stale_edges.push_back(id);
  }
  // Acyclicity: walking up from any node must terminate within n steps.
  for (NodeId id = 1; id < n && audit.acyclic; ++id) {
    NodeId cur = id;
    std::size_t steps = 0;
    while (overlay.parent(cur) != kNoNode) {
      cur = overlay.parent(cur);
      if (++steps > n) {
        audit.acyclic = false;
        break;
      }
    }
  }
  return audit;
}

std::string EpochAudit::to_string() const {
  std::ostringstream out;
  out << "epoch audit: " << stale_edges.size() << " stale edge(s), "
      << unleased_edges.size() << " unleased edge(s), "
      << (acyclic ? "acyclic" : "CYCLE DETECTED");
  return out.str();
}

const char* to_string(Invariant invariant) noexcept {
  switch (invariant) {
    case Invariant::kAcyclic: return "acyclic";
    case Invariant::kFanoutBound: return "fanout_bound";
    case Invariant::kGreedyOrder: return "greedy_order";
    case Invariant::kDelayDepth: return "delay_depth";
    case Invariant::kEpochLease: return "epoch_lease";
    case Invariant::kHealthMirror: return "health_mirror";
  }
  return "?";
}

namespace {

void add_violation(InvariantReport& report, Invariant invariant, NodeId node,
                   NodeId parent, const char* cause, std::string detail) {
  InvariantViolation violation;
  violation.invariant = invariant;
  violation.node = node;
  violation.parent = parent;
  violation.cause = cause;
  violation.detail = std::move(detail);
  report.violations.push_back(std::move(violation));
}

}  // namespace

InvariantReport audit_invariants(const Overlay& overlay, AlgorithmKind mode,
                                 const health::EpochBook* epochs) {
  InvariantReport report;
  const std::size_t n = overlay.node_count();
  report.nodes_checked = n;

  // Independent depth recomputation: BFS down the children lists from
  // every chain root. Any node left unvisited sits on a parent cycle
  // (parent/child symmetry is enforced structurally by Overlay), which
  // also covers the acyclicity invariant without unbounded walks.
  std::vector<int> depth(n, -1);
  std::vector<NodeId> root_of(n, kNoNode);
  std::queue<NodeId> frontier;
  for (NodeId id = 0; id < n; ++id) {
    if (overlay.parent(id) != kNoNode) continue;
    depth[id] = 0;
    root_of[id] = id;
    frontier.push(id);
  }
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop();
    for (const NodeId child : overlay.children(cur)) {
      if (depth[child] != -1) continue;
      depth[child] = depth[cur] + 1;
      root_of[child] = root_of[cur];
      frontier.push(child);
    }
  }

  for (NodeId id = 0; id < n; ++id) {
    const NodeId parent = overlay.parent(id);
    if (parent != kNoNode) ++report.edges_checked;

    if (depth[id] == -1) {
      add_violation(report, Invariant::kAcyclic, id, parent, "cycle",
                    "node " + std::to_string(id) +
                        " is unreachable from any chain root (parent cycle)");
      continue;  // depth-derived checks are meaningless on a cycle
    }

    // Fanout bound |Children(i)| <= f_i.
    const int children = static_cast<int>(overlay.children(id).size());
    if (children > overlay.fanout_of(id))
      add_violation(report, Invariant::kFanoutBound, id, kNoNode,
                    "fanout_exceeded",
                    "node " + std::to_string(id) + " serves " +
                        std::to_string(children) + " children, bound " +
                        std::to_string(overlay.fanout_of(id)));

    // DelayAt == depth (connected) or depth-below-root + 1 (detached,
    // the optimistic local estimate); DelayAt(source) == 0.
    const Delay expected =
        id == kSourceId
            ? 0
            : (root_of[id] == kSourceId ? depth[id] : depth[id] + 1);
    const Delay reported = overlay.delay_at(id);
    if (reported != expected)
      add_violation(report, Invariant::kDelayDepth, id, parent,
                    "delay_depth_mismatch",
                    "node " + std::to_string(id) + " reports DelayAt " +
                        std::to_string(reported) + ", recomputed depth " +
                        std::to_string(expected));

    if (parent == kNoNode) continue;

    // Greedy latency ordering on non-source edges: l_parent <= l_child.
    if (mode == AlgorithmKind::kGreedy && parent != kSourceId &&
        overlay.latency_of(parent) > overlay.latency_of(id))
      add_violation(report, Invariant::kGreedyOrder, id, parent,
                    "latency_order",
                    "edge " + std::to_string(id) + " <- " +
                        std::to_string(parent) + " violates l_parent (" +
                        std::to_string(overlay.latency_of(parent)) +
                        ") <= l_child (" +
                        std::to_string(overlay.latency_of(id)) + ")");

    // Epoch-lease consistency: every live edge carries a lease on the
    // parent's *current* incarnation.
    if (epochs != nullptr && epochs->size() == n) {
      if (!epochs->has_lease(id)) {
        add_violation(report, Invariant::kEpochLease, id, parent,
                      "unleased_edge",
                      "edge " + std::to_string(id) + " <- " +
                          std::to_string(parent) + " has no recorded lease");
      } else if (epochs->lease_epoch(id) > epochs->epoch(parent)) {
        add_violation(report, Invariant::kEpochLease, id, parent,
                      "future_lease",
                      "edge " + std::to_string(id) + " <- " +
                          std::to_string(parent) + " leased epoch " +
                          std::to_string(epochs->lease_epoch(id)) +
                          " ahead of the parent's " +
                          std::to_string(epochs->epoch(parent)));
      } else if (!epochs->lease_valid(id, parent)) {
        add_violation(report, Invariant::kEpochLease, id, parent,
                      "stale_lease",
                      "edge " + std::to_string(id) + " <- " +
                          std::to_string(parent) + " leased epoch " +
                          std::to_string(epochs->lease_epoch(id)) +
                          ", parent is at " +
                          std::to_string(epochs->epoch(parent)));
      }
    }
  }
  return report;
}

InvariantReport crosscheck_health(
    const Overlay& overlay, const telemetry::OverlayHealthRecorder& recorder,
    std::uint64_t run) {
  InvariantReport report;
  telemetry::HealthMirrorView view;
  if (!recorder.mirror_view(run, &view)) return report;

  const std::size_t n = overlay.node_count();
  report.nodes_checked = n;
  if (view.parent.size() != n) {
    add_violation(report, Invariant::kHealthMirror, kNoNode, kNoNode,
                  "health_mismatch",
                  "mirror tracks " + std::to_string(view.parent.size()) +
                      " node(s), overlay has " + std::to_string(n));
    return report;
  }

  // Ground truth: the same independent BFS the audit uses — depths and
  // chain roots recomputed from the children lists, never trusting the
  // overlay's own parent walks or the mirror's incremental state.
  std::vector<int> depth(n, -1);
  std::vector<NodeId> root_of(n, kNoNode);
  std::queue<NodeId> frontier;
  for (NodeId id = 0; id < n; ++id) {
    if (overlay.parent(id) != kNoNode) continue;
    depth[id] = 0;
    root_of[id] = id;
    frontier.push(id);
  }
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop();
    for (const NodeId child : overlay.children(cur)) {
      if (depth[child] != -1) continue;
      depth[child] = depth[cur] + 1;
      root_of[child] = root_of[cur];
      frontier.push(child);
    }
  }

  std::uint64_t online_consumers = 0;
  std::uint64_t orphans = 0;
  std::uint64_t satisfied = 0;
  std::uint64_t edges = 0;
  std::uint64_t capacity = 0;
  std::uint64_t saturated = 0;
  for (NodeId id = 0; id < n; ++id) {
    const bool online = overlay.online(id);
    const NodeId parent = overlay.parent(id);
    const bool connected = depth[id] != -1 && root_of[id] == kSourceId;
    const std::int64_t delay =
        id == kSourceId ? 0
        : depth[id] == -1
            ? -1  // on a cycle; the structural audit reports it
            : (connected ? depth[id] : depth[id] + 1);

    if (online) {
      capacity +=
          static_cast<std::uint64_t>(std::max(overlay.fanout_of(id), 0));
      if (static_cast<int>(overlay.children(id).size()) >=
          overlay.fanout_of(id))
        ++saturated;
    }
    if (id != kSourceId && online) {
      ++online_consumers;
      if (parent == kNoNode) ++orphans;
      if (connected && delay <= overlay.latency_of(id)) ++satisfied;
    }
    if (parent != kNoNode) ++edges;

    if ((view.online[id] != 0) != online)
      add_violation(report, Invariant::kHealthMirror, id, parent,
                    "health_mismatch",
                    "node " + std::to_string(id) + " mirror online=" +
                        std::to_string(view.online[id] != 0) + ", overlay " +
                        std::to_string(online));
    if (view.parent[id] != parent)
      add_violation(report, Invariant::kHealthMirror, id, parent,
                    "health_mismatch",
                    "node " + std::to_string(id) + " mirror parent=" +
                        std::to_string(view.parent[id]) + ", overlay " +
                        std::to_string(parent));
    if (depth[id] == -1) continue;  // cycle: delay checks meaningless
    if ((view.connected[id] != 0) != connected)
      add_violation(report, Invariant::kHealthMirror, id, parent,
                    "health_mismatch",
                    "node " + std::to_string(id) + " mirror connected=" +
                        std::to_string(view.connected[id] != 0) +
                        ", recomputed " + std::to_string(connected));
    const std::int64_t mirror_delay =
        id == kSourceId
            ? 0
            : (view.connected[id] != 0 ? view.depth[id] : view.depth[id] + 1);
    if (mirror_delay != delay)
      add_violation(report, Invariant::kHealthMirror, id, parent,
                    "health_mismatch",
                    "node " + std::to_string(id) + " mirror DelayAt=" +
                        std::to_string(mirror_delay) + ", recomputed " +
                        std::to_string(delay));
  }

  report.edges_checked = edges;
  const auto check_total = [&report](const char* what, std::uint64_t mirror,
                                     std::uint64_t recomputed) {
    if (mirror == recomputed) return;
    add_violation(report, Invariant::kHealthMirror, kNoNode, kNoNode,
                  "health_mismatch",
                  std::string(what) + " mirror=" + std::to_string(mirror) +
                      ", recomputed " + std::to_string(recomputed));
  };
  check_total("online_consumers", view.online_consumers, online_consumers);
  check_total("orphans", view.orphans, orphans);
  check_total("satisfied", view.satisfied, satisfied);
  check_total("edges", view.edges, edges);
  check_total("capacity", view.capacity, capacity);
  check_total("saturated", view.saturated, saturated);
  return report;
}

std::string InvariantReport::to_string() const {
  std::ostringstream out;
  out << "invariant audit: " << nodes_checked << " node(s), "
      << edges_checked << " edge(s), " << violations.size()
      << " violation(s)";
  for (const InvariantViolation& violation : violations)
    out << "\n  [" << lagover::to_string(violation.invariant) << "/"
        << violation.cause << "] " << violation.detail;
  return out.str();
}

std::size_t publish(const InvariantReport& report, AuditBus& bus,
                    Round round) {
  for (InvariantViolation violation : report.violations) {
    violation.round = round;
    bus.publish(violation);
    TELEM_COUNT("audit.violations", 1);
  }
  return report.violations.size();
}

telemetry::ViolationNote to_violation_note(
    const InvariantViolation& violation) {
  telemetry::ViolationNote note;
  note.ts = static_cast<double>(violation.round);
  note.invariant = to_string(violation.invariant);
  note.cause = violation.cause;
  note.node = violation.node;
  note.parent = violation.parent;
  note.detail = violation.detail;
  return note;
}

AuditBus::SubscriptionId attach_flight_recorder(
    AuditBus& bus, telemetry::FlightRecorder& recorder) {
  return bus.subscribe([&recorder](const InvariantViolation& violation) {
    recorder.note_violation(to_violation_note(violation));
  });
}

}  // namespace lagover
