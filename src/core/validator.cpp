#include "core/validator.hpp"

#include <sstream>

namespace lagover {

std::string to_string(NodeIssue issue) {
  switch (issue) {
    case NodeIssue::kNone: return "satisfied";
    case NodeIssue::kOffline: return "offline";
    case NodeIssue::kParentless: return "parentless";
    case NodeIssue::kDisconnected: return "in detached group";
    case NodeIssue::kDelayExceeded: return "delay exceeds constraint";
  }
  return "?";
}

ValidationReport validate_overlay(const Overlay& overlay) {
  ValidationReport report;
  report.consumers = overlay.consumer_count();
  for (NodeId id = 1; id < overlay.node_count(); ++id) {
    NodeDiagnosis diagnosis;
    diagnosis.node = id;
    diagnosis.delay = overlay.delay_at(id);
    diagnosis.constraint = overlay.latency_of(id);

    if (!overlay.online(id)) {
      diagnosis.issue = NodeIssue::kOffline;
    } else if (!overlay.has_parent(id)) {
      diagnosis.issue = NodeIssue::kParentless;
    } else if (!overlay.connected(id)) {
      diagnosis.issue = NodeIssue::kDisconnected;
    } else if (diagnosis.delay > diagnosis.constraint) {
      diagnosis.issue = NodeIssue::kDelayExceeded;
    } else {
      diagnosis.issue = NodeIssue::kNone;
      ++report.satisfied;
      continue;
    }
    report.issues.push_back(diagnosis);
  }
  return report;
}

std::string ValidationReport::to_string() const {
  std::ostringstream out;
  out << satisfied << '/' << consumers << " consumers satisfied";
  if (issues.empty()) {
    out << " — LagOver constructed\n";
    return out.str();
  }
  out << "; " << issues.size() << " issue(s):\n";
  for (const NodeDiagnosis& diagnosis : issues) {
    out << "  node " << diagnosis.node << ": "
        << lagover::to_string(diagnosis.issue) << " (delay "
        << diagnosis.delay << ", constraint " << diagnosis.constraint
        << ")\n";
  }
  return out.str();
}

}  // namespace lagover
