#include "core/validator.hpp"

#include <sstream>

namespace lagover {

std::string to_string(NodeIssue issue) {
  switch (issue) {
    case NodeIssue::kNone: return "satisfied";
    case NodeIssue::kOffline: return "offline";
    case NodeIssue::kParentless: return "parentless";
    case NodeIssue::kDisconnected: return "in detached group";
    case NodeIssue::kDelayExceeded: return "delay exceeds constraint";
  }
  return "?";
}

ValidationReport validate_overlay(const Overlay& overlay) {
  ValidationReport report;
  report.consumers = overlay.consumer_count();
  for (NodeId id = 1; id < overlay.node_count(); ++id) {
    NodeDiagnosis diagnosis;
    diagnosis.node = id;
    diagnosis.delay = overlay.delay_at(id);
    diagnosis.constraint = overlay.latency_of(id);

    if (!overlay.online(id)) {
      diagnosis.issue = NodeIssue::kOffline;
    } else if (!overlay.has_parent(id)) {
      diagnosis.issue = NodeIssue::kParentless;
    } else if (!overlay.connected(id)) {
      diagnosis.issue = NodeIssue::kDisconnected;
    } else if (diagnosis.delay > diagnosis.constraint) {
      diagnosis.issue = NodeIssue::kDelayExceeded;
    } else {
      diagnosis.issue = NodeIssue::kNone;
      ++report.satisfied;
      continue;
    }
    report.issues.push_back(diagnosis);
  }
  return report;
}

std::string ValidationReport::to_string() const {
  std::ostringstream out;
  out << satisfied << '/' << consumers << " consumers satisfied";
  if (issues.empty()) {
    out << " — LagOver constructed\n";
    return out.str();
  }
  out << "; " << issues.size() << " issue(s):\n";
  for (const NodeDiagnosis& diagnosis : issues) {
    out << "  node " << diagnosis.node << ": "
        << lagover::to_string(diagnosis.issue) << " (delay "
        << diagnosis.delay << ", constraint " << diagnosis.constraint
        << ")\n";
  }
  return out.str();
}

EpochAudit audit_epochs(const Overlay& overlay,
                        const health::EpochBook& epochs) {
  EpochAudit audit;
  const std::size_t n = overlay.node_count();
  for (NodeId id = 1; id < n; ++id) {
    const NodeId parent = overlay.parent(id);
    if (parent == kNoNode) continue;
    if (!epochs.has_lease(id)) {
      audit.unleased_edges.push_back(id);
      continue;
    }
    if (!epochs.lease_valid(id, parent)) audit.stale_edges.push_back(id);
  }
  // Acyclicity: walking up from any node must terminate within n steps.
  for (NodeId id = 1; id < n && audit.acyclic; ++id) {
    NodeId cur = id;
    std::size_t steps = 0;
    while (overlay.parent(cur) != kNoNode) {
      cur = overlay.parent(cur);
      if (++steps > n) {
        audit.acyclic = false;
        break;
      }
    }
  }
  return audit;
}

std::string EpochAudit::to_string() const {
  std::ostringstream out;
  out << "epoch audit: " << stale_edges.size() << " stale edge(s), "
      << unleased_edges.size() << " unleased edge(s), "
      << (acyclic ? "acyclic" : "CYCLE DETECTED");
  return out.str();
}

}  // namespace lagover
