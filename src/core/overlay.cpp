#include "core/overlay.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace lagover {

namespace {

// Structure-level telemetry: every edge/liveness mutation — including
// the protocol's displacement detaches and churn, which emit no
// TraceEvents — lands on the global event stream, so an offline
// consumer (the flight recorder, `lagover_inspect ancestry`) can replay
// the exact parent map at any sim time from a snapshot plus these
// events. No-ops while telemetry is off.
void record_edge_event(const char* name, NodeId subject, NodeId partner,
                       bool attached) {
  if (!telemetry::enabled()) return;
  telemetry::EventRecord record;
  record.ts = telemetry::sim_now();
  record.name = name;
  record.subject = subject;
  record.partner = partner;
  record.attached = attached;
  telemetry::event_bus().publish(record);
}

}  // namespace

Overlay::Overlay(Population population) : population_(std::move(population)) {
  validate(population_);
  const std::size_t n = population_.consumers.size() + 1;
  specs_.resize(n);
  specs_[kSourceId] = NodeSpec{
      kSourceId, Constraints{population_.source_fanout, /*latency=*/1}};
  for (const NodeSpec& spec : population_.consumers) specs_[spec.id] = spec;
  parent_.assign(n, kNoNode);
  children_.resize(n);
  online_.assign(n, 1);
  online_count_ = population_.consumers.size();
}

Overlay::Overlay(const Overlay& other)
    : population_(other.population_),
      specs_(other.specs_),
      parent_(other.parent_),
      children_(other.children_),
      online_(other.online_),
      online_count_(other.online_count_),
      counters_(other.counters_) {}

Overlay& Overlay::operator=(const Overlay& other) {
  if (this == &other) return *this;
  population_ = other.population_;
  specs_ = other.specs_;
  parent_ = other.parent_;
  children_ = other.children_;
  online_ = other.online_;
  online_count_ = other.online_count_;
  counters_ = other.counters_;
  attach_observer_ = nullptr;
  detach_observer_ = nullptr;
  return *this;
}

void Overlay::check_id(NodeId id) const {
  LAGOVER_EXPECTS(id < specs_.size());
}

int Overlay::fanout_of(NodeId id) const {
  check_id(id);
  return specs_[id].constraints.fanout;
}

Delay Overlay::latency_of(NodeId id) const {
  check_id(id);
  return specs_[id].constraints.latency;
}

const NodeSpec& Overlay::spec_of(NodeId id) const {
  check_id(id);
  return specs_[id];
}

NodeId Overlay::parent(NodeId id) const {
  check_id(id);
  return parent_[id];
}

const std::vector<NodeId>& Overlay::children(NodeId id) const {
  check_id(id);
  return children_[id];
}

int Overlay::free_fanout(NodeId id) const {
  check_id(id);
  return fanout_of(id) - static_cast<int>(children_[id].size());
}

NodeId Overlay::root(NodeId id) const {
  check_id(id);
  NodeId cur = id;
  while (parent_[cur] != kNoNode) cur = parent_[cur];
  return cur;
}

int Overlay::depth_below_root(NodeId id) const {
  check_id(id);
  int depth = 0;
  NodeId cur = id;
  while (parent_[cur] != kNoNode) {
    cur = parent_[cur];
    ++depth;
  }
  return depth;
}

Delay Overlay::delay_at(NodeId id) const {
  check_id(id);
  if (id == kSourceId) return 0;
  int depth = 0;
  NodeId cur = id;
  while (parent_[cur] != kNoNode) {
    cur = parent_[cur];
    ++depth;
  }
  // Connected: depth already counts the hop onto the source (a direct
  // child is at depth 1 = poll period). Detached: optimistic +1 for the
  // future hop from the group root onto the source.
  return cur == kSourceId ? depth : depth + 1;
}

bool Overlay::in_subtree(NodeId descendant, NodeId ancestor) const {
  check_id(descendant);
  check_id(ancestor);
  NodeId cur = descendant;
  while (true) {
    if (cur == ancestor) return true;
    if (parent_[cur] == kNoNode) return false;
    cur = parent_[cur];
  }
}

std::vector<NodeId> Overlay::subtree(NodeId id) const {
  check_id(id);
  std::vector<NodeId> out;
  std::vector<NodeId> stack{id};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    for (NodeId child : children_[cur]) stack.push_back(child);
  }
  return out;
}

bool Overlay::online(NodeId id) const {
  check_id(id);
  return online_[id] != 0;
}

void Overlay::set_offline(NodeId id) {
  check_id(id);
  LAGOVER_EXPECTS(id != kSourceId);
  if (!online_[id]) return;
  if (parent_[id] != kNoNode) detach(id);
  // Orphan the children: each becomes the root of its own group.
  while (!children_[id].empty()) detach(children_[id].back());
  online_[id] = 0;
  --online_count_;
  record_edge_event("node_offline", id, kNoNode, false);
}

void Overlay::set_online(NodeId id) {
  check_id(id);
  LAGOVER_EXPECTS(id != kSourceId);
  if (online_[id]) return;
  online_[id] = 1;
  ++online_count_;
  record_edge_event("node_online", id, kNoNode, false);
}

bool Overlay::can_attach(NodeId child, NodeId parent) const {
  check_id(child);
  check_id(parent);
  if (child == kSourceId || child == parent) return false;
  if (!online_[child] || !online_[parent]) return false;
  if (parent_[child] != kNoNode) return false;
  if (free_fanout(parent) <= 0) return false;
  // child is a chain root, so a cycle occurs exactly when parent lies in
  // child's subtree.
  if (in_subtree(parent, child)) return false;
  return true;
}

void Overlay::attach(NodeId child, NodeId parent) {
  LAGOVER_ASSERT_MSG(can_attach(child, parent),
                     "attach precondition violated");
  parent_[child] = parent;
  children_[parent].push_back(child);
  ++counters_.attaches;
  record_edge_event("edge_attach", child, parent, true);
  if (attach_observer_) attach_observer_(child, parent);
}

void Overlay::detach(NodeId child) {
  check_id(child);
  const NodeId p = parent_[child];
  LAGOVER_EXPECTS(p != kNoNode);
  if (detach_observer_) detach_observer_(child, p);
  auto& siblings = children_[p];
  const auto it = std::find(siblings.begin(), siblings.end(), child);
  LAGOVER_ASSERT(it != siblings.end());
  siblings.erase(it);
  parent_[child] = kNoNode;
  ++counters_.detaches;
  record_edge_event("edge_detach", child, p, false);
}

bool Overlay::satisfied(NodeId id) const {
  check_id(id);
  if (id == kSourceId) return true;
  if (!online_[id]) return false;
  NodeId cur = id;
  int depth = 0;
  while (parent_[cur] != kNoNode) {
    cur = parent_[cur];
    ++depth;
  }
  return cur == kSourceId && depth <= latency_of(id);
}

std::size_t Overlay::satisfied_count() const {
  std::size_t count = 0;
  for (NodeId id = 1; id < specs_.size(); ++id)
    if (online_[id] && satisfied(id)) ++count;
  return count;
}

bool Overlay::all_satisfied() const {
  for (NodeId id = 1; id < specs_.size(); ++id)
    if (online_[id] && !satisfied(id)) return false;
  return true;
}

double Overlay::satisfied_fraction() const {
  if (online_count_ == 0) return 1.0;
  return static_cast<double>(satisfied_count()) /
         static_cast<double>(online_count_);
}

void Overlay::audit() const {
  LAGOVER_ASSERT(parent_[kSourceId] == kNoNode);
  LAGOVER_ASSERT(online_[kSourceId] != 0);
  std::size_t observed_online = 0;
  for (NodeId id = 0; id < specs_.size(); ++id) {
    // Fanout bound.
    LAGOVER_ASSERT_MSG(
        static_cast<int>(children_[id].size()) <= fanout_of(id),
        "fanout exceeded at node " + std::to_string(id));
    // Parent/child symmetry.
    const NodeId p = parent_[id];
    if (p != kNoNode) {
      LAGOVER_ASSERT(p < specs_.size());
      const auto& siblings = children_[p];
      LAGOVER_ASSERT_MSG(
          std::count(siblings.begin(), siblings.end(), id) == 1,
          "parent/child asymmetry at node " + std::to_string(id));
    }
    for (NodeId child : children_[id])
      LAGOVER_ASSERT_MSG(parent_[child] == id,
                         "child/parent asymmetry at node " +
                             std::to_string(child));
    // Offline nodes are fully detached.
    if (!online_[id]) {
      LAGOVER_ASSERT(p == kNoNode);
      LAGOVER_ASSERT(children_[id].empty());
    } else if (id != kSourceId) {
      ++observed_online;
    }
    // Acyclicity: walking up from any node terminates within node_count
    // steps.
    NodeId cur = id;
    std::size_t steps = 0;
    while (parent_[cur] != kNoNode) {
      cur = parent_[cur];
      ++steps;
      LAGOVER_ASSERT_MSG(steps <= specs_.size(),
                         "cycle detected from node " + std::to_string(id));
    }
  }
  LAGOVER_ASSERT(observed_online == online_count_);
}

NodeId Overlay::first_greedy_order_violation() const {
  for (NodeId id = 1; id < specs_.size(); ++id) {
    const NodeId p = parent_[id];
    if (p == kNoNode || p == kSourceId) continue;
    if (latency_of(p) > latency_of(id)) return id;
  }
  return kNoNode;
}

std::string Overlay::to_ascii() const {
  std::ostringstream out;
  // Print the source tree first, then detached groups by root id.
  std::vector<NodeId> roots;
  for (NodeId id = 0; id < specs_.size(); ++id)
    if (parent_[id] == kNoNode && online_[id]) roots.push_back(id);

  auto print_subtree = [&](NodeId node, auto&& self, int indent) -> void {
    out << std::string(static_cast<std::size_t>(indent) * 2, ' ');
    if (node == kSourceId) {
      out << "0 (source, fanout " << fanout_of(node) << ")\n";
    } else {
      out << to_notation(specs_[node]) << "  delay=" << delay_at(node)
          << (satisfied(node) ? "" : "  [unsatisfied]") << '\n';
    }
    for (NodeId child : children_[node]) self(child, self, indent + 1);
  };

  for (NodeId r : roots) {
    if (r == kSourceId)
      out << "-- source tree --\n";
    else
      out << "-- detached group (root " << r << ") --\n";
    print_subtree(r, print_subtree, 0);
  }
  return out.str();
}

}  // namespace lagover
