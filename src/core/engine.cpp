#include "core/engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/fanout_greedy.hpp"
#include "core/greedy.hpp"
#include "core/hybrid.hpp"
#include "fault/faulty_oracle.hpp"
#include "telemetry/health.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/perf.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"

namespace lagover {

std::unique_ptr<Protocol> make_protocol(AlgorithmKind kind,
                                        SourceMode source_mode,
                                        int maintenance_patience) {
  switch (kind) {
    case AlgorithmKind::kGreedy:
      return std::make_unique<GreedyProtocol>(source_mode);
    case AlgorithmKind::kHybrid:
      return std::make_unique<HybridProtocol>(source_mode,
                                              maintenance_patience);
    case AlgorithmKind::kFanoutGreedy:
      return std::make_unique<FanoutGreedyProtocol>(source_mode);
  }
  throw InvalidArgument("unknown algorithm kind");
}

Engine::Engine(Population population, EngineConfig config)
    : config_(config),
      overlay_(std::move(population)),
      protocol_(make_protocol(config.algorithm, config.source_mode,
                              config.maintenance_patience)),
      oracle_(make_oracle(config.oracle)),
      core_(std::make_unique<ConstructionCore>(overlay_, *protocol_, *oracle_,
                                               config.timeout_rounds)),
      rng_(config.seed) {
  LAGOVER_EXPECTS(config.timeout_rounds >= 1);
  LAGOVER_EXPECTS(config.maintenance_patience >= 0);
  LAGOVER_EXPECTS(config.parent_poll_miss_limit >= 1);
  protocol_->set_orphaning_displacement(config.orphaning_displacement);
  // An adversary book with no adversarial nodes is indistinguishable
  // from no adversary: normalize it away so no hooks install and the
  // run stays byte-identical to an adversary-free engine.
  if (config_.adversary != nullptr && config_.adversary->empty())
    config_.adversary.reset();
  const std::size_t n = overlay_.node_count();
  epochs_.resize(n);
  detector_.resize(n, config_.health.phi);
  grandparent_hint_.assign(n, kNoNode);
  failover_pending_.assign(n, 0);
  // Sized unconditionally (pure memory, no RNG): the suspicion-detach
  // path touches the poll-miss counters even in adversary-only runs.
  parent_poll_misses_.assign(n, 0);
  {
    // The book's enabled flag tracks defense_active(): a defense config
    // without an adversary layer has nothing to defend against.
    health::DefenseConfig defense = config_.defense;
    defense.enabled = defense_active();
    suspicion_.resize(n, defense);
  }
  promised_delay_.assign(n, -1);
  // Lease bookkeeping rides on the overlay's edge observers: pure
  // record-keeping (no RNG), so the fault-free path is untouched.
  overlay_.set_attach_observer([this](NodeId child, NodeId parent) {
    epochs_.record_attachment(child, parent);
    detector_.reset(child);
    // Record the delay the parent promised (its *claimed* delay + 1):
    // the child verifies it against reality on every maintenance poll.
    if (defense_active() && config_.defense.delay_verification)
      promised_delay_[child] =
          static_cast<Delay>(protocol_->claimed_delay(overlay_, parent) + 1);
  });
  overlay_.set_detach_observer([this](NodeId child, NodeId /*parent*/) {
    epochs_.clear_lease(child);
    detector_.reset(child);
    promised_delay_[child] = -1;
  });
  core_->set_trace_bus(&trace_bus_);
  install_adversary_oracle();
  install_admission_oracle();
  install_fault_hooks();
  install_core_hooks();
  install_adversary_hooks();
  register_health_run();
}

Engine::~Engine() {
  if (health_run_ == 0) return;
  if (auto* recorder = telemetry::OverlayHealthRecorder::active())
    recorder->end_run(health_run_);
}

void Engine::register_health_run() {
  auto* recorder = telemetry::OverlayHealthRecorder::active();
  if (recorder == nullptr) return;
  // Flatten the constraints: telemetry/ sits below core/ and cannot see
  // Overlay. The mirror starts from the same everyone-online, everyone-
  // parentless state the overlay starts from.
  const std::size_t n = overlay_.node_count();
  std::vector<int> fanout(n, 0);
  std::vector<int> latency(n, 0);
  for (NodeId id = 0; id < n; ++id) {
    fanout[id] = overlay_.fanout_of(id);
    latency[id] = overlay_.latency_of(id);
  }
  health_run_ = recorder->begin_run(fanout, latency);
}

void Engine::install_admission_oracle() {
  if (config_.admission.empty()) return;
  admission_ = std::make_shared<AdmissionController>(config_.admission);
  // Admission wraps the (possibly claim-filtered) Oracle before the
  // fault layer does: rate limiting is a property of the service
  // itself, outages apply on top of it.
  auto admitted = std::make_unique<AdmittedOracle>(
      std::move(oracle_), admission_,
      [this] { return static_cast<SimTime>(round_); });
  admission_oracle_ = admitted.get();
  oracle_ = std::move(admitted);
  core_ = std::make_unique<ConstructionCore>(overlay_, *protocol_, *oracle_,
                                             config_.timeout_rounds);
  core_->set_trace_bus(&trace_bus_);
  admission_defer_.assign(overlay_.node_count(), 0);
  admission_attempts_.assign(overlay_.node_count(), 0);
}

void Engine::install_adversary_oracle() {
  if (config_.adversary == nullptr) return;
  // The Byzantine layer wraps the Oracle first, the fault layer (if any)
  // second: Oracle outages and stale answers apply on top of the lies.
  auto byzantine = std::make_unique<fault::ByzantineOracle>(config_.oracle,
                                                            config_.adversary);
  byzantine_oracle_ = byzantine.get();
  if (defense_active()) {
    byzantine->set_barred(
        [this](NodeId node) { return suspicion_.barred(node); });
    if (config_.defense.oracle_plausibility) {
      byzantine->enable_plausibility_filter(true);
      byzantine->set_plausibility_reporter(
          [this](NodeId suspect, const char* cause) {
            // report_once: the filter re-examines every candidate on
            // every query, so the same lie must not re-count.
            suspicion_.report_once(suspect, 3.0, epochs_.epoch(suspect),
                                   cause);
          });
    }
  }
  oracle_ = std::move(byzantine);
  core_ = std::make_unique<ConstructionCore>(overlay_, *protocol_, *oracle_,
                                             config_.timeout_rounds);
  core_->set_trace_bus(&trace_bus_);
}

void Engine::install_adversary_hooks() {
  if (config_.adversary == nullptr) return;
  // Every remote-delay admission decision in the protocol now runs on
  // the partner's *claimed* delay — a delay-liar passes checks it would
  // truthfully fail, which is exactly the attack surface.
  protocol_->set_delay_claim(
      [book = config_.adversary](NodeId node, Delay truth) {
        return book->claimed_delay(node, truth);
      });
  core_->set_byzantine_reject_probe(
      [book = config_.adversary](NodeId partner) {
        return book->rejects_child(partner);
      });
  if (defense_active()) {
    core_->set_candidate_filter(
        [this](NodeId candidate) { return !suspicion_.barred(candidate); });
    core_->set_suspicion_reporter(
        [this](NodeId suspect, NodeId /*reporter*/, const char* cause) {
          suspicion_.report(suspect, 1.0, epochs_.epoch(suspect), cause);
        });
  }
}

void Engine::install_core_hooks() {
  // The epoch fence only guards construction state once a fault or
  // adversary layer can actually re-incarnate nodes out from under it
  // (crashes, flappers, domain outages); without either the probe stays
  // uninstalled and churn-only runs are byte-stable.
  if (config_.faults != nullptr || config_.adversary != nullptr)
    core_->set_epoch_probe([this](NodeId id) { return epochs_.epoch(id); });
  // A breaker-open Oracle reads as an outage: the cached-partner
  // fallback serves (stale but local) instead of hammering a service
  // that is already shedding load.
  if (config_.faults != nullptr || admission_ != nullptr)
    core_->set_oracle_outage_probe([this] {
      const auto now = static_cast<SimTime>(round_);
      if (config_.faults != nullptr && config_.faults->oracle_down(now))
        return true;
      return admission_ != nullptr && admission_->open(now);
    });
}

void Engine::install_fault_hooks() {
  if (config_.faults == nullptr) return;
  parent_poll_misses_.assign(overlay_.node_count(), 0);
  // The synchronous engine's clock is the round number.
  oracle_ = fault::maybe_wrap_oracle(
      std::move(oracle_), config_.faults,
      [this] { return static_cast<SimTime>(round_); });
  core_ = std::make_unique<ConstructionCore>(overlay_, *protocol_, *oracle_,
                                             config_.timeout_rounds);
  core_->set_trace_bus(&trace_bus_);
  core_->set_delivery_probe([this](NodeId from, NodeId to) {
    return config_.faults->deliver(from, to, static_cast<SimTime>(round_));
  });
}

void Engine::set_oracle(std::unique_ptr<Oracle> oracle) {
  LAGOVER_EXPECTS(oracle != nullptr);
  LAGOVER_EXPECTS(!started_);
  // A replacement Oracle would bypass the Byzantine claim filter; the
  // adversary layer owns the Oracle stack.
  LAGOVER_EXPECTS(config_.adversary == nullptr);
  oracle_ = std::move(oracle);
  // The core borrows the oracle; rebuild it against the new one. Trace
  // consumers live on trace_bus_, which the rebuilt core re-attaches
  // to, so subscriptions survive the swap.
  core_ = std::make_unique<ConstructionCore>(overlay_, *protocol_, *oracle_,
                                             config_.timeout_rounds);
  core_->set_trace_bus(&trace_bus_);
  // Re-apply the admission and fault layers around the replacement
  // oracle (pre-run, so the fresh controller's counters lose nothing).
  install_admission_oracle();
  install_fault_hooks();
  install_core_hooks();
}

void Engine::set_churn(std::unique_ptr<ChurnModel> churn) {
  churn_ = std::move(churn);
}

TraceBus::SubscriptionId Engine::set_trace(
    std::function<void(const TraceEvent&)> trace) {
  if (trace_subscription_ != 0) {
    trace_bus_.unsubscribe(trace_subscription_);
    trace_subscription_ = 0;
  }
  if (trace) trace_subscription_ = trace_bus_.subscribe(std::move(trace));
  return trace_subscription_;
}

void Engine::apply_churn() {
  if (!churn_) return;
  const ChurnModel::Decision decision = churn_->decide(round_, overlay_, rng_);
  for (NodeId id : decision.leave) {
    if (!overlay_.online(id)) continue;
    overlay_.set_offline(id);
    core_->reset_node(id);
    grandparent_hint_[id] = kNoNode;
    failover_pending_[id] = 0;
    if (admission_ != nullptr) {
      admission_defer_[id] = 0;
      admission_attempts_[id] = 0;
    }
    core_->emit({round_, TraceEventType::kChurnLeave, id, kNoNode, false});
  }
  for (NodeId id : decision.join) {
    if (overlay_.online(id)) continue;
    overlay_.set_online(id);
    core_->reset_node(id);
    // A rejoining node is a new incarnation: state naming its previous
    // life (referrals, cached partners, hints) is now fenced.
    epochs_.bump(id);
    if (defense_active()) suspicion_.note_epoch(id, epochs_.epoch(id));
    core_->emit({round_, TraceEventType::kChurnJoin, id, kNoNode, false});
  }
}

void Engine::crash_node(NodeId id, double downtime, const char* cause) {
  // kCrash is emitted BEFORE the structural change so observers
  // (metrics recorders) can still see the children the crash orphans.
  TraceEvent event{round_, TraceEventType::kCrash, id, kNoNode, false};
  event.cause = cause;
  core_->emit(event);
  if (defense_active()) {
    // A crashing parent is instability evidence in proportion to the
    // children it strands. Honest-but-unreliable nodes accrue it too:
    // an unreliable parent is a poor parent regardless of intent.
    const double orphaned =
        static_cast<double>(overlay_.children(id).size());
    if (orphaned > 0.0)
      suspicion_.report(id, orphaned, epochs_.epoch(id), "unstable_parent");
  }
  if (config_.health.failover == health::FailoverPolicy::kLadder) {
    const NodeId grandparent = overlay_.parent(id);
    for (const NodeId child : overlay_.children(id)) {
      grandparent_hint_[child] = grandparent;
      failover_pending_[child] = 1;
    }
  }
  overlay_.set_offline(id);
  core_->reset_node(id);
  grandparent_hint_[id] = kNoNode;
  failover_pending_[id] = 0;
  if (admission_ != nullptr) {
    admission_defer_[id] = 0;
    admission_attempts_[id] = 0;
  }
  const Round back =
      round_ + std::max<Round>(1, static_cast<Round>(std::ceil(downtime)));
  crash_rejoins_.emplace_back(back, id);
}

void Engine::apply_scheduled_crashes() {
  // Flapper duty cycles and correlated domain-outage windows are pure
  // functions of (node, time) — no engine RNG — applied as a dedicated
  // pass so both attached nodes and orphans go down on schedule.
  const auto t = static_cast<SimTime>(round_);
  if (config_.adversary != nullptr) {
    for (NodeId id = 1; id < overlay_.node_count(); ++id)
      if (overlay_.online(id) && config_.adversary->flapping_down(id, t))
        crash_node(id, config_.adversary->flap_remaining(id, t), "flap");
  }
  if (config_.faults != nullptr && config_.faults->domains() != nullptr) {
    for (NodeId id = 1; id < overlay_.node_count(); ++id) {
      if (!overlay_.online(id)) continue;
      const double outage = config_.faults->domain_crash_outage(id, t);
      if (outage > 0.0) crash_node(id, outage, "domain");
    }
  }
}

void Engine::apply_fault_rejoins() {
  auto due = crash_rejoins_.begin();
  for (auto it = crash_rejoins_.begin(); it != crash_rejoins_.end(); ++it) {
    if (it->first > round_) {
      *due++ = *it;
      continue;
    }
    const NodeId id = it->second;
    if (overlay_.online(id)) continue;  // churn already rejoined it
    overlay_.set_online(id);
    core_->reset_node(id);
    // New incarnation: fence anything that still names the old one.
    epochs_.bump(id);
    if (defense_active()) suspicion_.note_epoch(id, epochs_.epoch(id));
    core_->emit({round_, TraceEventType::kRejoin, id, kNoNode, false});
  }
  crash_rejoins_.erase(due, crash_rejoins_.end());
}

bool Engine::suspect_parent(NodeId id) {
  if (config_.health.detection == health::DetectionPolicy::kPhiAccrual &&
      detector_.primed(id)) {
    // Adaptive rule: suspicion accrues with silence relative to the
    // link's own observed poll cadence. The miss counter still runs so
    // metrics stay comparable, but the verdict is phi's.
    ++parent_poll_misses_[id];
    return detector_.suspect(id, static_cast<double>(round_));
  }
  // Fixed rule (and the fallback while the phi window is unprimed).
  return ++parent_poll_misses_[id] >= config_.parent_poll_miss_limit;
}

void Engine::detach_suspected(NodeId id, NodeId parent, TraceEventType type) {
  parent_poll_misses_[id] = 0;
  // Losing a parent to silence or a stale lease is (mild) instability
  // evidence against it; kParentQuarantined is the ladder's own verdict
  // being executed, not new evidence.
  if (defense_active() && type != TraceEventType::kParentQuarantined)
    suspicion_.report(parent, 1.0, epochs_.epoch(parent), "unstable_parent");
  core_->detach_suspected(id, parent, round_, type);
  if (config_.health.failover == health::FailoverPolicy::kLadder)
    failover_pending_[id] = 1;
}

void Engine::escalate_starvation(NodeId child) {
  if (static_cast<std::size_t>(child) >= overlay_.node_count()) return;
  if (!overlay_.online(child) || !overlay_.has_parent(child)) return;
  const NodeId parent = overlay_.parent(child);
  ++starvation_detaches_;
  parent_poll_misses_[child] = 0;
  // An overloaded parent is a poor parent for THIS child right now, but
  // only mild evidence against it in general — weight 1, like a missed
  // poll, not like a provable lie.
  if (defense_active())
    suspicion_.report(parent, 1.0, epochs_.epoch(parent), "starved");
  overlay_.detach(child);
  TraceEvent event{round_, TraceEventType::kParentLost, child, parent, false};
  event.cause = "starved";
  core_->emit(event);
  if (config_.health.failover == health::FailoverPolicy::kLadder)
    failover_pending_[child] = 1;
  TELEM_COUNT("engine.starvation_detaches", 1);
}

RoundStats Engine::run_round() {
  TELEM_SCOPE("engine.round");
  started_ = true;
  ++round_;
  telemetry::note_sim_time(static_cast<double>(round_));
  apply_churn();
  if (config_.faults != nullptr) apply_fault_rejoins();
  if (config_.adversary != nullptr || config_.faults != nullptr)
    apply_scheduled_crashes();

  // With stale chain knowledge, snapshot each node's violation state
  // BEFORE this round's maintenance so decisions can be based on what a
  // node believed `knowledge_lag` rounds ago.
  if (config_.knowledge_lag > 0) {
    std::vector<char> snapshot(overlay_.node_count(), 0);
    for (NodeId id = 1; id < overlay_.node_count(); ++id) {
      if (!overlay_.online(id) || !overlay_.has_parent(id)) continue;
      snapshot[id] =
          overlay_.delay_at(id) > overlay_.latency_of(id) ? 1 : 0;
    }
    violation_snapshots_.push_front(std::move(snapshot));
    while (violation_snapshots_.size() >
           static_cast<std::size_t>(config_.knowledge_lag))
      violation_snapshots_.pop_back();
  }

  // Maintenance pass over connected nodes. With instantaneous knowledge
  // it is evaluated on live state: an upstream detach earlier in the
  // pass already changed downstream Root()/DelayAt() values.
  const int patience = protocol_->maintenance_patience();
  const bool lagged =
      config_.knowledge_lag > 0 &&
      violation_snapshots_.size() ==
          static_cast<std::size_t>(config_.knowledge_lag);
  for (NodeId id = 1; id < overlay_.node_count(); ++id) {
    // Crash fault for attached nodes (orphans roll in the interaction
    // pass below): the node dies, its subtree is orphaned.
    if (config_.faults != nullptr && overlay_.online(id) &&
        overlay_.has_parent(id) &&
        config_.faults->crash_roll(id, static_cast<SimTime>(round_))) {
      crash_node(id,
                 config_.faults->crash_downtime(static_cast<SimTime>(round_)),
                 "");
      continue;
    }
    // Dead-parent detection (fault layer): the maintenance check
    // doubles as a poll of the parent. Enough consecutive undeliverable
    // polls (partition / loss) and the node re-orphans itself.
    if (config_.faults != nullptr && overlay_.online(id) &&
        overlay_.has_parent(id)) {
      const NodeId parent = overlay_.parent(id);
      // Epoch fence: a lease on a previous incarnation of the parent is
      // invalid no matter how healthy the link looks.
      if (!epochs_.lease_valid(id, parent)) {
        epochs_.note_fence();
        protocol_->note_stale_epoch();
        detach_suspected(id, parent, TraceEventType::kEpochFenced);
        continue;
      }
      if (!config_.faults->deliver(id, parent,
                                   static_cast<SimTime>(round_))) {
        if (suspect_parent(id))
          detach_suspected(id, parent, TraceEventType::kParentLost);
        continue;  // the poll never arrived; no maintenance this round
      }
      parent_poll_misses_[id] = 0;
      detector_.heartbeat(id, static_cast<double>(round_));
      // Poll replies piggy-back the parent's own parent: the first rung
      // of the failover ladder should the parent die.
      grandparent_hint_[id] = overlay_.parent(parent);
    }
    if (defense_active() && overlay_.online(id) && overlay_.has_parent(id)) {
      const NodeId parent = overlay_.parent(id);
      // Child-side delay verification: compare the delay promised at
      // the last attach/poll against the chain as actually observed.
      // The promise is then refreshed to the parent's *current* claim,
      // so an honest parent whose upstream grew is charged once for the
      // growth while a liar (whose claim never matches reality) is
      // charged on every poll.
      if (config_.defense.delay_verification && overlay_.connected(id) &&
          promised_delay_[id] > 0) {
        const Delay observed_delay = overlay_.delay_at(id);
        if (observed_delay > promised_delay_[id])
          suspicion_.report(
              parent,
              std::min<double>(observed_delay - promised_delay_[id], 3.0),
              epochs_.epoch(parent), "delay_misreport");
        promised_delay_[id] =
            static_cast<Delay>(protocol_->claimed_delay(overlay_, parent) + 1);
      }
      // Receipt audit: a free-riding parent relays no feed items, so
      // its children see no receipts over a full poll period. (Emulated
      // via the adversary book; the feed layer drops the actual pushes.)
      if (config_.defense.receipt_audit &&
          config_.adversary->withholds_feed(parent))
        suspicion_.report(parent, 1.0, epochs_.epoch(parent), "no_receipts");
      // Ladder consequence: children abandon a barred parent at once.
      if (suspicion_.barred(parent)) {
        ++quarantine_detaches_;
        detach_suspected(id, parent, TraceEventType::kParentQuarantined);
        continue;
      }
    }
    std::optional<bool> observed;
    if (config_.knowledge_lag > 0)
      observed = lagged && violation_snapshots_.back()[id] != 0;
    // A node's DelayAt knowledge is piggy-backed down its chain, so
    // under an adversary the self-check runs on the parent's *reported*
    // delay: a delay-liar's direct children believe claim + 1 and stay
    // put while truly violated — the lie hides the damage from its
    // victims. (Takes precedence over knowledge_lag; the snapshots are
    // ground truth the victims would not have.)
    if (config_.adversary != nullptr && overlay_.online(id) &&
        overlay_.has_parent(id))
      observed =
          protocol_->claimed_delay(overlay_, overlay_.parent(id)) + 1 >
          overlay_.latency_of(id);
    core_->maintenance_step(id, patience, round_, observed);
  }

  // Interaction pass: every parentless chain root acts once, in random
  // order (nodes are not synchronized; the shuffle models arbitrary
  // arrival order within a round).
  std::vector<NodeId> roots;
  roots.reserve(overlay_.node_count());
  for (NodeId id = 1; id < overlay_.node_count(); ++id)
    if (overlay_.online(id) && !overlay_.has_parent(id)) roots.push_back(id);
  rng_.shuffle(roots);
  for (NodeId i : roots) {
    // Crash fault: the node dies mid-interaction instead of acting.
    if (config_.faults != nullptr &&
        config_.faults->crash_roll(i, static_cast<SimTime>(round_))) {
      crash_node(i,
                 config_.faults->crash_downtime(static_cast<SimTime>(round_)),
                 "");
      continue;
    }
    // Failover ladder: a node orphaned by a suspicion event gets one
    // shot at local recovery before the Oracle-driven loop. Only ever
    // armed by faults, so the fault-free path is untouched.
    if (failover_pending_[i] != 0) {
      failover_pending_[i] = 0;
      const NodeId hint = grandparent_hint_[i];
      grandparent_hint_[i] = kNoNode;
      if (core_->failover_step(i, hint, round_)) {
        if (admission_ != nullptr) admission_attempts_[i] = 0;
        continue;
      }
    }
    // Admission backoff: a node the Oracle rejected sits out its
    // retry-after window instead of re-stampeding the service.
    if (admission_ != nullptr && admission_defer_[i] > round_) continue;
    const StepOutcome outcome = core_->orphan_step(i, rng_, round_);
    if (admission_oracle_ != nullptr) {
      if (admission_oracle_->consume_rejection() &&
          outcome.partner == kNoNode) {
        // Exponential retry spread (mirrors the async engine's backoff
        // machinery at round granularity): the k-th consecutive
        // rejection defers the node retry_after * 2^(k-1) rounds.
        const int attempts = std::min(++admission_attempts_[i], 6);
        const double wait = config_.admission.retry_after *
                            static_cast<double>(1 << (attempts - 1));
        admission_defer_[i] =
            round_ +
            std::max<Round>(1, static_cast<Round>(std::llround(wait)));
        TELEM_COUNT("engine.admission_deferrals", 1);
      } else if (outcome.partner != kNoNode) {
        admission_attempts_[i] = 0;
      }
    }
  }

  RoundStats stats;
  stats.round = round_;
  stats.online = overlay_.online_count();
  stats.satisfied = overlay_.satisfied_count();
  stats.satisfied_fraction = overlay_.satisfied_fraction();
  std::size_t orphans = 0;
  for (NodeId id = 1; id < overlay_.node_count(); ++id)
    if (overlay_.online(id) && !overlay_.has_parent(id)) ++orphans;
  stats.orphan_roots = orphans;
  TELEM_COUNT("engine.rounds", 1);
  TELEM_GAUGE("engine.online", static_cast<double>(stats.online));
  TELEM_GAUGE("engine.orphan_roots", static_cast<double>(stats.orphan_roots));
  TELEM_GAUGE("engine.satisfied_fraction", stats.satisfied_fraction);
  if (record_history_) history_.push_back(stats);
  if (health_run_ != 0) {
    if (auto* recorder = telemetry::OverlayHealthRecorder::active())
      recorder->note_round(health_run_, static_cast<double>(round_));
  }
#ifdef LAGOVER_AUDIT
  audit_round();
#endif
  return stats;
}

void Engine::audit_round() {
  InvariantReport report =
      audit_invariants(overlay_, config_.algorithm, &epochs_);
  if (health_run_ != 0) {
    // Cross-check the observatory's incremental mirror against this
    // audit's independent recompute; mismatches ride the same bus (and
    // the same zero-violation CI gates) as paper-invariant violations.
    if (auto* recorder = telemetry::OverlayHealthRecorder::active()) {
      InvariantReport health =
          crosscheck_health(overlay_, *recorder, health_run_);
      for (InvariantViolation& violation : health.violations)
        report.violations.push_back(std::move(violation));
    }
  }
  audit_violations_ += publish(report, audit_bus_, round_);
}

std::optional<Round> Engine::run_until_converged(Round max_rounds) {
  const telemetry::PerfPhase perf_phase("construction");
  if (overlay_.all_satisfied()) return round_;
  for (Round r = 0; r < max_rounds; ++r) {
    run_round();
    if (overlay_.all_satisfied()) return round_;
  }
  return std::nullopt;
}

}  // namespace lagover
