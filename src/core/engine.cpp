#include "core/engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/fanout_greedy.hpp"
#include "core/greedy.hpp"
#include "core/hybrid.hpp"
#include "fault/faulty_oracle.hpp"

namespace lagover {

std::unique_ptr<Protocol> make_protocol(AlgorithmKind kind,
                                        SourceMode source_mode,
                                        int maintenance_patience) {
  switch (kind) {
    case AlgorithmKind::kGreedy:
      return std::make_unique<GreedyProtocol>(source_mode);
    case AlgorithmKind::kHybrid:
      return std::make_unique<HybridProtocol>(source_mode,
                                              maintenance_patience);
    case AlgorithmKind::kFanoutGreedy:
      return std::make_unique<FanoutGreedyProtocol>(source_mode);
  }
  throw InvalidArgument("unknown algorithm kind");
}

Engine::Engine(Population population, EngineConfig config)
    : config_(config),
      overlay_(std::move(population)),
      protocol_(make_protocol(config.algorithm, config.source_mode,
                              config.maintenance_patience)),
      oracle_(make_oracle(config.oracle)),
      core_(std::make_unique<ConstructionCore>(overlay_, *protocol_, *oracle_,
                                               config.timeout_rounds)),
      rng_(config.seed) {
  LAGOVER_EXPECTS(config.timeout_rounds >= 1);
  LAGOVER_EXPECTS(config.maintenance_patience >= 0);
  LAGOVER_EXPECTS(config.parent_poll_miss_limit >= 1);
  protocol_->set_orphaning_displacement(config.orphaning_displacement);
  install_fault_hooks();
}

void Engine::install_fault_hooks() {
  if (config_.faults == nullptr) return;
  parent_poll_misses_.assign(overlay_.node_count(), 0);
  // The synchronous engine's clock is the round number.
  oracle_ = fault::maybe_wrap_oracle(
      std::move(oracle_), config_.faults,
      [this] { return static_cast<SimTime>(round_); });
  core_ = std::make_unique<ConstructionCore>(overlay_, *protocol_, *oracle_,
                                             config_.timeout_rounds);
  core_->set_trace(trace_);
  core_->set_delivery_probe([this](NodeId from, NodeId to) {
    return config_.faults->deliver(from, to, static_cast<SimTime>(round_));
  });
  core_->set_oracle_outage_probe([this] {
    return config_.faults->oracle_down(static_cast<SimTime>(round_));
  });
}

void Engine::set_oracle(std::unique_ptr<Oracle> oracle) {
  LAGOVER_EXPECTS(oracle != nullptr);
  LAGOVER_EXPECTS(!started_);
  oracle_ = std::move(oracle);
  // The core borrows the oracle; rebuild it against the new one,
  // preserving any installed trace observer.
  core_ = std::make_unique<ConstructionCore>(overlay_, *protocol_, *oracle_,
                                             config_.timeout_rounds);
  core_->set_trace(trace_);
  // Re-apply the fault layer around the replacement oracle.
  install_fault_hooks();
}

void Engine::set_churn(std::unique_ptr<ChurnModel> churn) {
  churn_ = std::move(churn);
}

void Engine::set_trace(std::function<void(const TraceEvent&)> trace) {
  trace_ = std::move(trace);
  core_->set_trace(trace_);
}

void Engine::apply_churn() {
  if (!churn_) return;
  const ChurnModel::Decision decision = churn_->decide(round_, overlay_, rng_);
  for (NodeId id : decision.leave) {
    if (!overlay_.online(id)) continue;
    overlay_.set_offline(id);
    core_->reset_node(id);
    core_->emit({round_, TraceEventType::kChurnLeave, id, kNoNode, false});
  }
  for (NodeId id : decision.join) {
    if (overlay_.online(id)) continue;
    overlay_.set_online(id);
    core_->reset_node(id);
    core_->emit({round_, TraceEventType::kChurnJoin, id, kNoNode, false});
  }
}

void Engine::crash_node(NodeId id) {
  overlay_.set_offline(id);
  core_->reset_node(id);
  core_->emit({round_, TraceEventType::kChurnLeave, id, kNoNode, false});
  const double downtime =
      config_.faults->crash_downtime(static_cast<SimTime>(round_));
  const Round back =
      round_ + std::max<Round>(1, static_cast<Round>(std::ceil(downtime)));
  crash_rejoins_.emplace_back(back, id);
}

void Engine::apply_fault_rejoins() {
  auto due = crash_rejoins_.begin();
  for (auto it = crash_rejoins_.begin(); it != crash_rejoins_.end(); ++it) {
    if (it->first > round_) {
      *due++ = *it;
      continue;
    }
    const NodeId id = it->second;
    if (overlay_.online(id)) continue;  // churn already rejoined it
    overlay_.set_online(id);
    core_->reset_node(id);
    core_->emit({round_, TraceEventType::kChurnJoin, id, kNoNode, false});
  }
  crash_rejoins_.erase(due, crash_rejoins_.end());
}

RoundStats Engine::run_round() {
  started_ = true;
  ++round_;
  apply_churn();
  if (config_.faults != nullptr) apply_fault_rejoins();

  // With stale chain knowledge, snapshot each node's violation state
  // BEFORE this round's maintenance so decisions can be based on what a
  // node believed `knowledge_lag` rounds ago.
  if (config_.knowledge_lag > 0) {
    std::vector<char> snapshot(overlay_.node_count(), 0);
    for (NodeId id = 1; id < overlay_.node_count(); ++id) {
      if (!overlay_.online(id) || !overlay_.has_parent(id)) continue;
      snapshot[id] =
          overlay_.delay_at(id) > overlay_.latency_of(id) ? 1 : 0;
    }
    violation_snapshots_.push_front(std::move(snapshot));
    while (violation_snapshots_.size() >
           static_cast<std::size_t>(config_.knowledge_lag))
      violation_snapshots_.pop_back();
  }

  // Maintenance pass over connected nodes. With instantaneous knowledge
  // it is evaluated on live state: an upstream detach earlier in the
  // pass already changed downstream Root()/DelayAt() values.
  const int patience = protocol_->maintenance_patience();
  const bool lagged =
      config_.knowledge_lag > 0 &&
      violation_snapshots_.size() ==
          static_cast<std::size_t>(config_.knowledge_lag);
  for (NodeId id = 1; id < overlay_.node_count(); ++id) {
    // Crash fault for attached nodes (orphans roll in the interaction
    // pass below): the node dies, its subtree is orphaned.
    if (config_.faults != nullptr && overlay_.online(id) &&
        overlay_.has_parent(id) &&
        config_.faults->crash_roll(id, static_cast<SimTime>(round_))) {
      crash_node(id);
      continue;
    }
    // Dead-parent detection (fault layer): the maintenance check
    // doubles as a poll of the parent. Enough consecutive undeliverable
    // polls (partition / loss) and the node re-orphans itself.
    if (config_.faults != nullptr && overlay_.online(id) &&
        overlay_.has_parent(id)) {
      const NodeId parent = overlay_.parent(id);
      if (!config_.faults->deliver(id, parent,
                                   static_cast<SimTime>(round_))) {
        if (++parent_poll_misses_[id] >= config_.parent_poll_miss_limit) {
          parent_poll_misses_[id] = 0;
          overlay_.detach(id);
          core_->emit({round_, TraceEventType::kParentLost, id, parent,
                       false});
        }
        continue;  // the poll never arrived; no maintenance this round
      }
      parent_poll_misses_[id] = 0;
    }
    std::optional<bool> observed;
    if (config_.knowledge_lag > 0)
      observed = lagged && violation_snapshots_.back()[id] != 0;
    core_->maintenance_step(id, patience, round_, observed);
  }

  // Interaction pass: every parentless chain root acts once, in random
  // order (nodes are not synchronized; the shuffle models arbitrary
  // arrival order within a round).
  std::vector<NodeId> roots;
  roots.reserve(overlay_.node_count());
  for (NodeId id = 1; id < overlay_.node_count(); ++id)
    if (overlay_.online(id) && !overlay_.has_parent(id)) roots.push_back(id);
  rng_.shuffle(roots);
  for (NodeId i : roots) {
    // Crash fault: the node dies mid-interaction instead of acting.
    if (config_.faults != nullptr &&
        config_.faults->crash_roll(i, static_cast<SimTime>(round_))) {
      crash_node(i);
      continue;
    }
    core_->orphan_step(i, rng_, round_);
  }

  RoundStats stats;
  stats.round = round_;
  stats.online = overlay_.online_count();
  stats.satisfied = overlay_.satisfied_count();
  stats.satisfied_fraction = overlay_.satisfied_fraction();
  std::size_t orphans = 0;
  for (NodeId id = 1; id < overlay_.node_count(); ++id)
    if (overlay_.online(id) && !overlay_.has_parent(id)) ++orphans;
  stats.orphan_roots = orphans;
  if (record_history_) history_.push_back(stats);
  return stats;
}

std::optional<Round> Engine::run_until_converged(Round max_rounds) {
  if (overlay_.all_satisfied()) return round_;
  for (Round r = 0; r < max_rounds; ++r) {
    run_round();
    if (overlay_.all_satisfied()) return round_;
  }
  return std::nullopt;
}

}  // namespace lagover
