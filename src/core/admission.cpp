#include "core/admission.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "telemetry/metrics.hpp"

namespace lagover {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  assert(!config_.empty());
  assert(config_.window > 0.0);
}

void AdmissionController::roll_to(double now) {
  const auto index =
      static_cast<std::int64_t>(std::floor(now / config_.window));
  if (!started_) {
    started_ = true;
    window_index_ = index;
    return;
  }
  // Evaluate every boundary crossed; idle windows count as clean, so a
  // lull lets the saturation streak (and a half-open breaker) recover.
  while (window_index_ < index) {
    close_window();
    ++window_index_;
    window_count_ = 0;
    window_saturated_ = false;
  }
}

void AdmissionController::close_window() {
  if (window_saturated_) {
    ++saturated_streak_;
    clean_streak_ = 0;
  } else {
    ++clean_streak_;
    saturated_streak_ = 0;
  }
  switch (state_) {
    case Breaker::kClosed:
      if (saturated_streak_ >= config_.breaker_trip_windows)
        trip(static_cast<double>(window_index_ + 1) * config_.window);
      break;
    case Breaker::kHalfOpen:
      if (window_saturated_) {
        // The probe window saturated again: the crowd is still there.
        trip(static_cast<double>(window_index_ + 1) * config_.window);
      } else if (clean_streak_ >= config_.breaker_close_windows) {
        state_ = Breaker::kClosed;
        ++breaker_closes_;
        TELEM_GAUGE("oracle.breaker_open", 0.0);
      }
      break;
    case Breaker::kOpen:
      break;
  }
}

void AdmissionController::trip(double now) {
  state_ = Breaker::kOpen;
  opened_at_ = now;
  saturated_streak_ = 0;
  clean_streak_ = 0;
  ++breaker_trips_;
  TELEM_COUNT("oracle.breaker_trips", 1);
  TELEM_GAUGE("oracle.breaker_open", 1.0);
}

bool AdmissionController::open(double now) noexcept {
  if (state_ == Breaker::kOpen && now >= opened_at_ + config_.breaker_cooldown)
    state_ = Breaker::kHalfOpen;
  return state_ == Breaker::kOpen;
}

AdmissionController::Verdict AdmissionController::on_query(double now) {
  roll_to(now);
  if (open(now)) {
    ++rejected_;
    TELEM_COUNT("oracle.admission_rejected", 1);
    return Verdict::kReject;
  }
  ++window_count_;
  if (static_cast<double>(window_count_) > config_.rate_limit) {
    window_saturated_ = true;
    if (config_.serve_stale) {
      ++stale_verdicts_;
      TELEM_COUNT("oracle.admission_stale", 1);
      return Verdict::kStale;
    }
    ++rejected_;
    TELEM_COUNT("oracle.admission_rejected", 1);
    return Verdict::kReject;
  }
  ++admitted_;
  TELEM_COUNT("oracle.admission_admitted", 1);
  return Verdict::kAdmit;
}

AdmittedOracle::AdmittedOracle(std::unique_ptr<Oracle> inner,
                               std::shared_ptr<AdmissionController> control,
                               std::function<SimTime()> clock)
    : inner_(std::move(inner)),
      control_(std::move(control)),
      clock_(std::move(clock)) {
  stale_cache_.reserve(kStaleCacheSize);
}

void AdmittedOracle::remember(NodeId partner) {
  for (std::size_t i = 0; i < stale_cache_.size(); ++i) {
    if (stale_cache_[i] != partner) continue;
    stale_cache_.erase(stale_cache_.begin() +
                       static_cast<std::ptrdiff_t>(i));
    break;
  }
  stale_cache_.insert(stale_cache_.begin(), partner);
  if (stale_cache_.size() > kStaleCacheSize) stale_cache_.pop_back();
}

std::optional<NodeId> AdmittedOracle::sample_impl(NodeId querier,
                                                  const Overlay& overlay,
                                                  Rng& rng) {
  const AdmissionController::Verdict verdict =
      control_->on_query(static_cast<double>(clock_()));
  if (verdict == AdmissionController::Verdict::kAdmit) {
    auto result = inner_->sample(querier, overlay, rng);
    if (result.has_value()) remember(*result);
    return result;
  }
  if (verdict == AdmissionController::Verdict::kStale) {
    // Degraded service: the freshest cached partner that is still a
    // plausible answer for this querier under the live overlay. No
    // Oracle work, no RNG — deterministic and cheap by design.
    for (NodeId candidate : stale_cache_) {
      if (candidate == querier) continue;
      if (!DirectoryOracle::eligible(kind(), querier, candidate, overlay))
        continue;
      ++stale_served_;
      TELEM_COUNT("oracle.stale_served", 1);
      return candidate;
    }
    // Nothing in the cache qualifies: fall through to a rejection so
    // the querier backs off instead of spinning on empty answers.
  }
  rejection_pending_ = true;
  return std::nullopt;
}

}  // namespace lagover
