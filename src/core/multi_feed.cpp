#include "core/multi_feed.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "telemetry/perf.hpp"

namespace lagover {

MultiFeedSystem::MultiFeedSystem(std::vector<int> source_fanouts,
                                 std::vector<MultiConsumerSpec> consumers,
                                 MultiFeedConfig config)
    : consumers_(std::move(consumers)), config_(config) {
  const std::size_t feeds = source_fanouts.size();
  if (feeds == 0) throw InvalidArgument("at least one feed required");
  for (std::size_t k = 0; k < consumers_.size(); ++k) {
    const MultiConsumerSpec& consumer = consumers_[k];
    if (consumer.id != static_cast<NodeId>(k + 1))
      throw InvalidArgument("consumer ids must be 1..N in order");
    if (consumer.total_fanout < 0)
      throw InvalidArgument("total fanout must be non-negative");
    for (const FeedSubscription& sub : consumer.subscriptions) {
      if (sub.feed >= feeds)
        throw InvalidArgument("subscription to unknown feed");
      if (sub.latency < 1)
        throw InvalidArgument("subscription latency must be >= 1");
    }
  }

  // Feed demand (subscriber counts) for demand-weighted allocation.
  std::vector<std::size_t> demand(feeds, 0);
  for (const auto& consumer : consumers_)
    for (const auto& sub : consumer.subscriptions) ++demand[sub.feed];

  // Split each consumer's budget across its subscribed feeds.
  allocation_.assign(feeds, std::vector<int>(consumers_.size() + 1, 0));
  for (const auto& consumer : consumers_) {
    const auto& subs = consumer.subscriptions;
    if (subs.empty()) continue;
    std::vector<double> weight(subs.size(), 1.0);
    if (config_.policy == BudgetPolicy::kDemandWeighted)
      for (std::size_t s = 0; s < subs.size(); ++s)
        weight[s] = static_cast<double>(std::max<std::size_t>(
            demand[subs[s].feed], 1));
    const double total_weight =
        std::accumulate(weight.begin(), weight.end(), 0.0);

    // Floor shares, then hand out the remainder to the largest weights.
    int assigned = 0;
    std::vector<std::pair<double, std::size_t>> fractional;
    for (std::size_t s = 0; s < subs.size(); ++s) {
      const double exact =
          consumer.total_fanout * weight[s] / total_weight;
      const int share = static_cast<int>(exact);
      allocation_[subs[s].feed][consumer.id] = share;
      assigned += share;
      fractional.emplace_back(exact - share, s);
    }
    std::sort(fractional.rbegin(), fractional.rend());
    const int extras = consumer.total_fanout - assigned;
    for (int e = 0; e < extras; ++e) {
      const std::size_t s =
          fractional[static_cast<std::size_t>(e) % subs.size()].second;
      ++allocation_[subs[s].feed][consumer.id];
    }
  }

  // Build one population + engine per feed (dense per-feed ids).
  to_local_.assign(feeds, std::vector<NodeId>(consumers_.size() + 1, kNoNode));
  to_global_.assign(feeds, {kNoNode});  // per-feed id 0 = feed source
  for (std::size_t f = 0; f < feeds; ++f) {
    Population population;
    population.source_fanout = source_fanouts[f];
    for (const auto& consumer : consumers_) {
      const auto sub = std::find_if(
          consumer.subscriptions.begin(), consumer.subscriptions.end(),
          [f](const FeedSubscription& s) { return s.feed == f; });
      if (sub == consumer.subscriptions.end()) continue;
      const auto local_id = static_cast<NodeId>(to_global_[f].size());
      to_local_[f][consumer.id] = local_id;
      to_global_[f].push_back(consumer.id);
      population.consumers.push_back(NodeSpec{
          local_id,
          Constraints{allocation_[f][consumer.id], sub->latency}});
    }
    EngineConfig engine_config = config_.engine;
    engine_config.seed = config_.engine.seed + 1000003ULL * (f + 1);
    engines_.push_back(
        std::make_unique<Engine>(std::move(population), engine_config));
  }
}

const Engine& MultiFeedSystem::engine(std::size_t feed) const {
  LAGOVER_EXPECTS(feed < engines_.size());
  return *engines_[feed];
}

Engine& MultiFeedSystem::engine(std::size_t feed) {
  LAGOVER_EXPECTS(feed < engines_.size());
  return *engines_[feed];
}

int MultiFeedSystem::allocated_fanout(NodeId consumer,
                                      std::size_t feed) const {
  LAGOVER_EXPECTS(feed < allocation_.size());
  LAGOVER_EXPECTS(consumer < allocation_[feed].size());
  return allocation_[feed][consumer];
}

void MultiFeedSystem::run_round() {
  ++round_;
  for (auto& engine : engines_) engine->run_round();
}

std::optional<Round> MultiFeedSystem::run_until_converged(Round max_rounds) {
  const telemetry::PerfPhase perf_phase("construction");
  auto all_done = [&] {
    for (const auto& engine : engines_)
      if (!engine->overlay().all_satisfied()) return false;
    return true;
  };
  if (all_done()) return round_;
  for (Round r = 0; r < max_rounds; ++r) {
    run_round();
    if (all_done()) return round_;
  }
  return std::nullopt;
}

bool MultiFeedSystem::fully_served(NodeId consumer) const {
  LAGOVER_EXPECTS(consumer >= 1 && consumer <= consumers_.size());
  for (const auto& sub : consumers_[consumer - 1].subscriptions) {
    const NodeId local = to_local_[sub.feed][consumer];
    if (!engines_[sub.feed]->overlay().satisfied(local)) return false;
  }
  return true;
}

MultiFeedStats MultiFeedSystem::stats() const {
  MultiFeedStats stats;
  stats.consumers = consumers_.size();
  for (const auto& engine : engines_)
    stats.per_feed_satisfied.push_back(engine->overlay().satisfied_fraction());
  for (const auto& consumer : consumers_)
    if (fully_served(consumer.id)) ++stats.fully_served;
  stats.fully_served_fraction =
      consumers_.empty()
          ? 1.0
          : static_cast<double>(stats.fully_served) /
                static_cast<double>(consumers_.size());
  return stats;
}

void MultiFeedSystem::audit_budgets() const {
  for (const auto& consumer : consumers_) {
    int used = 0;
    for (std::size_t f = 0; f < engines_.size(); ++f) {
      const NodeId local = to_local_[f][consumer.id];
      if (local == kNoNode) continue;
      used += static_cast<int>(
          engines_[f]->overlay().children(local).size());
    }
    LAGOVER_ASSERT_MSG(used <= consumer.total_fanout,
                       "shared fanout budget exceeded at consumer " +
                           std::to_string(consumer.id));
  }
}

}  // namespace lagover
