#include "core/construction_core.hpp"

#include <algorithm>

namespace lagover {

ConstructionCore::ConstructionCore(Overlay& overlay, Protocol& protocol,
                                   Oracle& oracle, int timeout_limit)
    : overlay_(overlay),
      protocol_(protocol),
      oracle_(oracle),
      timeout_limit_(timeout_limit) {
  const std::size_t n = overlay.node_count();
  timeout_counter_.assign(n, 0);
  violation_streak_.assign(n, 0);
  referral_.assign(n, kNoNode);
  pending_source_.assign(n, 0);
  recent_partners_.assign(n, {});
}

void ConstructionCore::reset_node(NodeId id) {
  timeout_counter_[id] = 0;
  violation_streak_[id] = 0;
  referral_[id] = kNoNode;
  pending_source_[id] = 0;
  // A node that left (or crashed) loses its session state, including
  // the partner cache.
  recent_partners_[id].clear();
}

void ConstructionCore::remember_partner(NodeId i, NodeId partner) {
  auto& cache = recent_partners_[i];
  const auto it = std::find(cache.begin(), cache.end(), partner);
  if (it != cache.end()) cache.erase(it);
  cache.insert(cache.begin(), partner);
  if (cache.size() > kPartnerCacheSize) cache.resize(kPartnerCacheSize);
}

StepOutcome ConstructionCore::orphan_step(NodeId i, Rng& rng, Round round) {
  if (!overlay_.online(i) || overlay_.has_parent(i)) return {};

  // Timeout / explicit source referral => direct source contact
  // (Algorithm 2 steps 2-8), resetting the timeout counter regardless of
  // the outcome ("Reset counter for Timeout").
  if (pending_source_[i] != 0 || timeout_counter_[i] >= timeout_limit_) {
    if (delivery_probe_ && !delivery_probe_(i, kSourceId)) {
      // The request was lost in flight: keep the pending referral so
      // the next step retries the source instead of re-earning the
      // timeout from scratch.
      pending_source_[i] = 1;
      emit({round, TraceEventType::kSourceContactFailed, i, kSourceId, false});
      return {kSourceId, false, false};
    }
    pending_source_[i] = 0;
    timeout_counter_[i] = 0;
    referral_[i] = kNoNode;
    const bool attached = protocol_.contact_source(overlay_, i);
    emit({round, TraceEventType::kSourceContact, i, kSourceId, attached});
    return {kSourceId, true, attached};
  }

  // Pick a partner: last referral when still usable, Oracle otherwise.
  NodeId partner = kNoNode;
  if (referral_[i] != kNoNode) {
    const NodeId r = referral_[i];
    referral_[i] = kNoNode;
    if (r != i && r != kSourceId && overlay_.online(r)) partner = r;
  }
  if (partner == kNoNode) {
    const auto sampled = oracle_.sample(i, overlay_, rng);
    if (sampled.has_value()) {
      partner = *sampled;
    } else if (oracle_outage_probe_ && oracle_outage_probe_()) {
      // Oracle outage: fall back to the most recent cached partner that
      // is still a plausible peer. Deterministic (no RNG) and only
      // engaged during declared outage windows.
      for (const NodeId cached : recent_partners_[i]) {
        if (cached != i && cached != kSourceId && overlay_.online(cached)) {
          partner = cached;
          break;
        }
      }
    }
    if (partner == kNoNode) {
      // "It may happen that the Oracle finds no suitable j, and the peer
      // needs to wait and try again." Waiting still counts toward the
      // timeout, which is the escape hatch for starved peers.
      ++timeout_counter_[i];
      emit({round, TraceEventType::kOracleEmpty, i, kNoNode, false});
      return {kNoNode, true, false};
    }
  }

  // A stale Oracle view can hand out a peer that has already left; the
  // contact then simply fails. Likewise the fault layer can lose the
  // interaction request. Both count toward the timeout (the node wasted
  // a step) and trigger the caller's retry/backoff policy.
  if (!overlay_.online(partner) ||
      (delivery_probe_ && !delivery_probe_(i, partner))) {
    ++timeout_counter_[i];
    emit({round, TraceEventType::kInteractionFailed, i, partner, false});
    return {partner, false, false};
  }

  const InteractionResult result = protocol_.interact(overlay_, i, partner);
  emit({round, TraceEventType::kInteraction, i, partner, result.attached});
  remember_partner(i, partner);
  if (result.referral.has_value()) {
    if (*result.referral == kSourceId) {
      pending_source_[i] = 1;
    } else {
      referral_[i] = *result.referral;
    }
  }
  if (overlay_.has_parent(i)) {
    timeout_counter_[i] = 0;
  } else {
    ++timeout_counter_[i];
  }
  return {partner, true, overlay_.has_parent(i)};
}

bool ConstructionCore::maintenance_step(NodeId i, int patience, Round round,
                                        std::optional<bool> observed_violated) {
  if (!overlay_.online(i) || !overlay_.has_parent(i)) {
    violation_streak_[i] = 0;
    return false;
  }
  // For connected nodes this is the paper's condition (DelayAt > l with
  // Root = 0). For detached nodes DelayAt is the *optimistic* delay —
  // the best achievable once the group root attaches — so exceeding l
  // means the position is hopeless and waiting for Root = 0 only delays
  // the inevitable detach.
  const bool violated = observed_violated.has_value()
                            ? *observed_violated
                            : overlay_.delay_at(i) > overlay_.latency_of(i);
  if (!violated) {
    violation_streak_[i] = 0;
    return false;
  }
  if (++violation_streak_[i] > patience) {
    overlay_.detach(i);
    violation_streak_[i] = 0;
    ++maintenance_detaches_;
    emit({round, TraceEventType::kMaintenanceDetach, i, kNoNode, false});
    return true;
  }
  return false;
}

}  // namespace lagover
