#include "core/construction_core.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"

namespace lagover {

const char* to_string(TraceEventType type) noexcept {
  switch (type) {
    case TraceEventType::kChurnLeave: return "churn_leave";
    case TraceEventType::kChurnJoin: return "churn_join";
    case TraceEventType::kMaintenanceDetach: return "maintenance_detach";
    case TraceEventType::kSourceContact: return "source_contact";
    case TraceEventType::kInteraction: return "interaction";
    case TraceEventType::kOracleEmpty: return "oracle_empty";
    case TraceEventType::kInteractionFailed: return "interaction_failed";
    case TraceEventType::kSourceContactFailed: return "source_contact_failed";
    case TraceEventType::kParentLost: return "parent_lost";
    case TraceEventType::kCrash: return "crash";
    case TraceEventType::kRejoin: return "rejoin";
    case TraceEventType::kEpochFenced: return "epoch_fenced";
    case TraceEventType::kFailoverAttach: return "failover_attach";
    case TraceEventType::kParentQuarantined: return "parent_quarantined";
  }
  return "unknown";
}

ConstructionCore::ConstructionCore(Overlay& overlay, Protocol& protocol,
                                   Oracle& oracle, int timeout_limit)
    : overlay_(overlay),
      protocol_(protocol),
      oracle_(oracle),
      timeout_limit_(timeout_limit) {
  const std::size_t n = overlay.node_count();
  timeout_counter_.assign(n, 0);
  violation_streak_.assign(n, 0);
  referral_.assign(n, kNoNode);
  referral_epoch_.assign(n, health::kNoEpoch);
  pending_source_.assign(n, 0);
  recent_partners_.assign(n, {});
}

void ConstructionCore::emit(TraceEvent event) {
  const bool telem = telemetry::enabled();
  const bool bus_live = bus_ != nullptr && bus_->has_subscribers();
  if (!telem && !trace_ && !bus_live) return;
  if (event.when < 0.0)
    event.when = clock_ ? clock_() : static_cast<SimTime>(event.round);
  if (event.epoch == health::kNoEpoch && epoch_probe_ &&
      event.subject != kNoNode)
    event.epoch = epoch_probe_(event.subject);
  if (telem) {
    // Per-event-type counter plus the engine-agnostic global stream
    // (the name varies per event, so the registry is hit directly
    // instead of through the site-cached TELEM_COUNT macro).
    const char* name = to_string(event.type);
    telemetry::MetricsRegistry::instance()
        .counter(std::string("trace.") + name)
        .inc();
    telemetry::EventRecord record;
    record.ts = event.when;
    record.name = name;
    record.cause = event.cause;
    record.subject = event.subject;
    record.partner = event.partner;
    record.epoch = static_cast<std::int64_t>(event.epoch);
    record.attached = event.attached;
    telemetry::record_event(record);
  }
  if (trace_) trace_(event);
  if (bus_live) bus_->publish(event);
}

void ConstructionCore::detach_suspected(NodeId id, NodeId parent, Round round,
                                        TraceEventType type) {
  overlay_.detach(id);
  TraceEvent event{round, type, id, parent, false};
  switch (type) {
    case TraceEventType::kEpochFenced:
      event.cause = "stale_lease";
      break;
    case TraceEventType::kParentQuarantined:
      event.cause = "quarantined";
      break;
    default:
      event.cause = "missed_polls";
      break;
  }
  emit(event);
}

void ConstructionCore::reset_node(NodeId id) {
  timeout_counter_[id] = 0;
  violation_streak_[id] = 0;
  referral_[id] = kNoNode;
  referral_epoch_[id] = health::kNoEpoch;
  pending_source_[id] = 0;
  // A node that left (or crashed) loses its session state, including
  // the partner cache.
  recent_partners_[id].clear();
}

void ConstructionCore::remember_partner(NodeId i, NodeId partner) {
  auto& cache = recent_partners_[i];
  const auto it =
      std::find_if(cache.begin(), cache.end(),
                   [partner](const CachedPartner& c) {
                     return c.node == partner;
                   });
  if (it != cache.end()) cache.erase(it);
  const health::Epoch epoch =
      epoch_probe_ ? epoch_probe_(partner) : health::kNoEpoch;
  cache.insert(cache.begin(), CachedPartner{partner, epoch});
  if (cache.size() > kPartnerCacheSize) cache.resize(kPartnerCacheSize);
}

std::vector<NodeId> ConstructionCore::recent_partners(NodeId i) const {
  std::vector<NodeId> out;
  out.reserve(recent_partners_[i].size());
  for (const CachedPartner& c : recent_partners_[i]) out.push_back(c.node);
  return out;
}

bool ConstructionCore::fenced(NodeId node, health::Epoch stamped) {
  if (!epoch_probe_ || stamped == health::kNoEpoch) return false;
  if (epoch_probe_(node) == stamped) return false;
  protocol_.note_stale_epoch();
  return true;
}

bool ConstructionCore::failover_step(NodeId i, NodeId grandparent_hint,
                                     Round round) {
  if (!overlay_.online(i) || overlay_.has_parent(i)) return false;
  TELEM_SCOPE("core.failover_step");

  // Ladder rung 1: the grandparent hint (piggy-backed on poll replies
  // by the owning engine, already epoch-checked there).
  // Ladder rung 2..: cached recent partners, most recent first.
  std::vector<CachedPartner> candidates;
  if (grandparent_hint != kNoNode && grandparent_hint != i)
    candidates.push_back(
        {grandparent_hint,
         epoch_probe_ ? epoch_probe_(grandparent_hint) : health::kNoEpoch});
  for (const CachedPartner& c : recent_partners_[i])
    if (c.node != grandparent_hint) candidates.push_back(c);

  for (const CachedPartner& c : candidates) {
    if (c.node == i || !overlay_.online(c.node)) continue;
    if (fenced(c.node, c.epoch)) continue;
    if (candidate_filter_ && !candidate_filter_(c.node)) continue;
    if (c.node != kSourceId) {
      if (!overlay_.can_attach(i, c.node)) continue;
      // Keep i's own bound: attaching under c must not leave i violated.
      // Runs on c's *reported* delay — the failover path is as blind to
      // delay-liars as the Oracle path.
      if (protocol_.claimed_delay(overlay_, c.node) + 1 >
          overlay_.latency_of(i))
        continue;
    }
    if (delivery_probe_ && !delivery_probe_(i, c.node)) continue;
    bool attached = false;
    if (c.node == kSourceId) {
      attached = protocol_.contact_source(overlay_, i);
    } else {
      overlay_.attach(i, c.node);
      attached = true;
    }
    if (!attached) continue;
    timeout_counter_[i] = 0;
    ++failover_attaches_;
    emit({round, TraceEventType::kFailoverAttach, i, c.node, true});
    return true;
  }
  return false;
}

StepOutcome ConstructionCore::orphan_step(NodeId i, Rng& rng, Round round) {
  if (!overlay_.online(i) || overlay_.has_parent(i)) return {};
  TELEM_SCOPE("core.orphan_step");

  // Timeout / explicit source referral => direct source contact
  // (Algorithm 2 steps 2-8), resetting the timeout counter regardless of
  // the outcome ("Reset counter for Timeout").
  if (pending_source_[i] != 0 || timeout_counter_[i] >= timeout_limit_) {
    if (delivery_probe_ && !delivery_probe_(i, kSourceId)) {
      // The request was lost in flight: keep the pending referral so
      // the next step retries the source instead of re-earning the
      // timeout from scratch.
      pending_source_[i] = 1;
      emit({round, TraceEventType::kSourceContactFailed, i, kSourceId, false});
      return {kSourceId, false, false};
    }
    pending_source_[i] = 0;
    timeout_counter_[i] = 0;
    referral_[i] = kNoNode;
    const bool attached = protocol_.contact_source(overlay_, i);
    emit({round, TraceEventType::kSourceContact, i, kSourceId, attached});
    return {kSourceId, true, attached};
  }

  // Pick a partner: last referral when still usable, Oracle otherwise.
  // A referral naming a peer that re-incarnated since it was issued is
  // fenced: the grant belonged to the previous incarnation.
  NodeId partner = kNoNode;
  if (referral_[i] != kNoNode) {
    const NodeId r = referral_[i];
    const health::Epoch r_epoch = referral_epoch_[i];
    referral_[i] = kNoNode;
    referral_epoch_[i] = health::kNoEpoch;
    if (r != i && r != kSourceId && overlay_.online(r) &&
        !fenced(r, r_epoch) && (!candidate_filter_ || candidate_filter_(r)))
      partner = r;
  }
  if (partner == kNoNode) {
    const auto sampled = oracle_.sample(i, overlay_, rng);
    if (sampled.has_value()) {
      partner = *sampled;
    } else if (oracle_outage_probe_ && oracle_outage_probe_()) {
      // Oracle outage: fall back to the most recent cached partner that
      // is still a plausible peer. Deterministic (no RNG) and only
      // engaged during declared outage windows.
      for (const CachedPartner& cached : recent_partners_[i]) {
        if (cached.node != i && cached.node != kSourceId &&
            overlay_.online(cached.node) &&
            !fenced(cached.node, cached.epoch) &&
            (!candidate_filter_ || candidate_filter_(cached.node))) {
          partner = cached.node;
          break;
        }
      }
    }
    if (partner == kNoNode) {
      // "It may happen that the Oracle finds no suitable j, and the peer
      // needs to wait and try again." Waiting still counts toward the
      // timeout, which is the escape hatch for starved peers.
      ++timeout_counter_[i];
      emit({round, TraceEventType::kOracleEmpty, i, kNoNode, false});
      return {kNoNode, true, false};
    }
  }

  // A stale Oracle view can hand out a peer that has already left; the
  // contact then simply fails. Likewise the fault layer can lose the
  // interaction request. Both count toward the timeout (the node wasted
  // a step) and trigger the caller's retry/backoff policy.
  if (!overlay_.online(partner) ||
      (delivery_probe_ && !delivery_probe_(i, partner))) {
    ++timeout_counter_[i];
    emit({round, TraceEventType::kInteractionFailed, i, partner, false});
    return {partner, false, false};
  }

  // Byzantine fanout-liar: the request arrived but the partner refuses
  // the interaction it solicited capacity for. A wasted step for i (it
  // counts toward the timeout and triggers backoff) and first-hand
  // evidence for the defense ladder.
  if (byzantine_reject_probe_ && byzantine_reject_probe_(partner)) {
    ++timeout_counter_[i];
    if (suspicion_reporter_)
      suspicion_reporter_(partner, i, "byzantine_reject");
    TraceEvent event{round, TraceEventType::kInteractionFailed, i, partner,
                     false};
    event.cause = "byzantine_reject";
    emit(event);
    return {partner, false, false};
  }

  const InteractionResult result = protocol_.interact(overlay_, i, partner);
  emit({round, TraceEventType::kInteraction, i, partner, result.attached});
  remember_partner(i, partner);
  if (result.referral.has_value()) {
    if (*result.referral == kSourceId) {
      pending_source_[i] = 1;
    } else {
      referral_[i] = *result.referral;
      referral_epoch_[i] =
          epoch_probe_ ? epoch_probe_(*result.referral) : health::kNoEpoch;
    }
  }
  if (overlay_.has_parent(i)) {
    timeout_counter_[i] = 0;
  } else {
    ++timeout_counter_[i];
  }
  return {partner, true, overlay_.has_parent(i)};
}

bool ConstructionCore::maintenance_step(NodeId i, int patience, Round round,
                                        std::optional<bool> observed_violated) {
  if (!overlay_.online(i) || !overlay_.has_parent(i)) {
    violation_streak_[i] = 0;
    return false;
  }
  TELEM_SCOPE("core.maintenance_step");
  // Delay slack l_i - DelayAt(i): how much latency headroom the node
  // has. Negative slack = bound violated; shifted by +1 so a slack of 0
  // lands in a finite bucket instead of underflow.
  TELEM_HIST("core.delay_slack",
             static_cast<double>(overlay_.latency_of(i)) -
                 static_cast<double>(overlay_.delay_at(i)) + 1.0);
  // For connected nodes this is the paper's condition (DelayAt > l with
  // Root = 0). For detached nodes DelayAt is the *optimistic* delay —
  // the best achievable once the group root attaches — so exceeding l
  // means the position is hopeless and waiting for Root = 0 only delays
  // the inevitable detach.
  const bool violated = observed_violated.has_value()
                            ? *observed_violated
                            : overlay_.delay_at(i) > overlay_.latency_of(i);
  if (!violated) {
    violation_streak_[i] = 0;
    return false;
  }
  if (++violation_streak_[i] > patience) {
    overlay_.detach(i);
    violation_streak_[i] = 0;
    ++maintenance_detaches_;
    emit({round, TraceEventType::kMaintenanceDetach, i, kNoNode, false});
    return true;
  }
  return false;
}

}  // namespace lagover
