#include "core/async_engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "fault/faulty_oracle.hpp"
#include "telemetry/health.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/perf.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"

namespace lagover {

AsyncEngine::AsyncEngine(Population population, AsyncConfig config)
    : config_(config),
      overlay_(std::move(population)),
      protocol_(make_protocol(config.algorithm, config.source_mode,
                              config.maintenance_patience)),
      oracle_(make_oracle(config.oracle)),
      core_(std::make_unique<ConstructionCore>(overlay_, *protocol_, *oracle_,
                                               config.timeout_steps)),
      rng_(config.seed) {
  LAGOVER_EXPECTS(config.min_interaction_time > 0.0);
  LAGOVER_EXPECTS(config.max_interaction_time >= config.min_interaction_time);
  LAGOVER_EXPECTS(config.maintenance_period > 0.0);
  LAGOVER_EXPECTS(config.backoff_base > 0.0);
  LAGOVER_EXPECTS(config.backoff_max >= config.backoff_base);
  LAGOVER_EXPECTS(config.backoff_jitter >= 0.0 && config.backoff_jitter < 1.0);
  LAGOVER_EXPECTS(config.parent_poll_miss_limit >= 1);
  // An adversary book with no adversarial nodes is indistinguishable
  // from no adversary: normalize it away so no hooks install and the
  // run stays byte-identical to an adversary-free engine.
  if (config_.adversary != nullptr && config_.adversary->empty())
    config_.adversary.reset();
  const std::size_t n = overlay_.node_count();
  epochs_.resize(n);
  detector_.resize(n, config_.health.phi);
  grandparent_hint_.assign(n, kNoNode);
  failover_pending_.assign(n, 0);
  // Sized unconditionally (pure memory, no RNG): the suspicion-detach
  // path touches the poll-miss counters even in adversary-only runs.
  failed_attempts_.assign(n, 0);
  parent_poll_misses_.assign(n, 0);
  {
    // The book's enabled flag tracks defense_active(): a defense config
    // without an adversary layer has nothing to defend against.
    health::DefenseConfig defense = config_.defense;
    defense.enabled = defense_active();
    suspicion_.resize(n, defense);
  }
  promised_delay_.assign(n, -1);
  // Lease bookkeeping rides on the overlay's edge observers: pure
  // record-keeping (no RNG, no scheduling), so the fault-free path is
  // untouched.
  overlay_.set_attach_observer([this](NodeId child, NodeId parent) {
    epochs_.record_attachment(child, parent);
    detector_.reset(child);
    // Record the delay the parent promised (its *claimed* delay + 1):
    // the child verifies it against reality on every maintenance poll.
    if (defense_active() && config_.defense.delay_verification)
      promised_delay_[child] =
          static_cast<Delay>(protocol_->claimed_delay(overlay_, parent) + 1);
  });
  overlay_.set_detach_observer([this](NodeId child, NodeId /*parent*/) {
    epochs_.clear_lease(child);
    detector_.reset(child);
    promised_delay_[child] = -1;
  });
  core_->set_trace_bus(&trace_bus_);
  install_adversary_oracle();
  install_admission_oracle();
  install_fault_hooks();
  install_core_hooks();
  install_adversary_hooks();
#ifdef LAGOVER_AUDIT
  // Audit the overlay once per simulated time unit (the same cadence as
  // the synchronous engine's rounds). Read-only: it draws no RNG and
  // mutates nothing, so the construction trajectory is unchanged.
  sim_.schedule_periodic(1.0, [this] { audit_tick(); });
#endif
  register_health_run();
  // Stagger the first wake-ups so nodes are desynchronized from t = 0.
  for (NodeId id = 1; id < overlay_.node_count(); ++id)
    schedule_node(id, draw_duration());
}

AsyncEngine::~AsyncEngine() {
  if (health_run_ == 0) return;
  if (auto* recorder = telemetry::OverlayHealthRecorder::active())
    recorder->end_run(health_run_);
}

void AsyncEngine::register_health_run() {
  auto* recorder = telemetry::OverlayHealthRecorder::active();
  if (recorder == nullptr) return;
  // Flatten the constraints: telemetry/ sits below core/ and cannot see
  // Overlay.
  const std::size_t n = overlay_.node_count();
  std::vector<int> fanout(n, 0);
  std::vector<int> latency(n, 0);
  for (NodeId id = 0; id < n; ++id) {
    fanout[id] = overlay_.fanout_of(id);
    latency[id] = overlay_.latency_of(id);
  }
  health_run_ = recorder->begin_run(fanout, latency);
  // Sample once per simulated time unit — the audit tick's cadence.
  // Read-only and RNG-free, so the construction trajectory is unchanged;
  // the event only exists when a recorder is active, keeping default
  // runs byte-identical.
  sim_.schedule_periodic(1.0, [this] {
    if (health_run_ == 0) return;
    if (auto* active = telemetry::OverlayHealthRecorder::active())
      active->note_round(health_run_, sim_.now());
  });
}

void AsyncEngine::audit_tick() {
  InvariantReport report =
      audit_invariants(overlay_, config_.algorithm, &epochs_);
  if (health_run_ != 0) {
    // Cross-check the observatory's incremental mirror against this
    // audit's independent recompute; mismatches ride the same bus (and
    // the same zero-violation CI gates) as paper-invariant violations.
    if (auto* recorder = telemetry::OverlayHealthRecorder::active()) {
      InvariantReport health =
          crosscheck_health(overlay_, *recorder, health_run_);
      for (InvariantViolation& violation : health.violations)
        report.violations.push_back(std::move(violation));
    }
  }
  audit_violations_ +=
      publish(report, audit_bus_, static_cast<Round>(sim_.now()));
}

void AsyncEngine::install_adversary_oracle() {
  if (config_.adversary == nullptr) return;
  // The Byzantine layer wraps the Oracle first, the fault layer (if any)
  // second: Oracle outages and stale answers apply on top of the lies.
  auto byzantine = std::make_unique<fault::ByzantineOracle>(config_.oracle,
                                                            config_.adversary);
  byzantine_oracle_ = byzantine.get();
  if (defense_active()) {
    byzantine->set_barred(
        [this](NodeId node) { return suspicion_.barred(node); });
    if (config_.defense.oracle_plausibility) {
      byzantine->enable_plausibility_filter(true);
      byzantine->set_plausibility_reporter(
          [this](NodeId suspect, const char* cause) {
            // report_once: the filter re-examines every candidate on
            // every query, so the same lie must not re-count.
            suspicion_.report_once(suspect, 3.0, epochs_.epoch(suspect),
                                   cause);
          });
    }
  }
  oracle_ = std::move(byzantine);
  core_ = std::make_unique<ConstructionCore>(overlay_, *protocol_, *oracle_,
                                             config_.timeout_steps);
  core_->set_trace_bus(&trace_bus_);
}

void AsyncEngine::install_adversary_hooks() {
  if (config_.adversary == nullptr) return;
  // Every remote-delay admission decision in the protocol now runs on
  // the partner's *claimed* delay — a delay-liar passes checks it would
  // truthfully fail, which is exactly the attack surface.
  protocol_->set_delay_claim(
      [book = config_.adversary](NodeId node, Delay truth) {
        return book->claimed_delay(node, truth);
      });
  core_->set_byzantine_reject_probe(
      [book = config_.adversary](NodeId partner) {
        return book->rejects_child(partner);
      });
  if (defense_active()) {
    core_->set_candidate_filter(
        [this](NodeId candidate) { return !suspicion_.barred(candidate); });
    core_->set_suspicion_reporter(
        [this](NodeId suspect, NodeId /*reporter*/, const char* cause) {
          suspicion_.report(suspect, 1.0, epochs_.epoch(suspect), cause);
        });
  }
}

void AsyncEngine::install_admission_oracle() {
  if (config_.admission.empty()) return;
  admission_ = std::make_shared<AdmissionController>(config_.admission);
  // Admission wraps the (possibly claim-filtered) Oracle before the
  // fault layer does: rate limiting is a property of the service
  // itself, outages apply on top of it.
  auto admitted = std::make_unique<AdmittedOracle>(
      std::move(oracle_), admission_, [this] { return sim_.now(); });
  admission_oracle_ = admitted.get();
  oracle_ = std::move(admitted);
  core_ = std::make_unique<ConstructionCore>(overlay_, *protocol_, *oracle_,
                                             config_.timeout_steps);
  core_->set_trace_bus(&trace_bus_);
}

void AsyncEngine::install_fault_hooks() {
  if (config_.faults == nullptr) return;
  failed_attempts_.assign(overlay_.node_count(), 0);
  parent_poll_misses_.assign(overlay_.node_count(), 0);
  auto clock = [this] { return sim_.now(); };
  oracle_ = fault::maybe_wrap_oracle(std::move(oracle_), config_.faults,
                                     clock);
  core_ = std::make_unique<ConstructionCore>(overlay_, *protocol_, *oracle_,
                                             config_.timeout_steps);
  core_->set_trace_bus(&trace_bus_);
  core_->set_delivery_probe([this](NodeId from, NodeId to) {
    return config_.faults->deliver(from, to, sim_.now());
  });
}

void AsyncEngine::install_core_hooks() {
  core_->set_clock([this] { return sim_.now(); });
  // The epoch fence only guards construction state once a fault or
  // adversary layer can actually re-incarnate nodes out from under it
  // (crashes, flappers, domain outages); without either the probe stays
  // uninstalled and churn-only runs are byte-stable.
  if (config_.faults != nullptr || config_.adversary != nullptr)
    core_->set_epoch_probe([this](NodeId id) { return epochs_.epoch(id); });
  // A breaker-open Oracle reads as an outage: the cached-partner
  // fallback serves (stale but local) instead of hammering a service
  // that is already shedding load.
  if (config_.faults != nullptr || admission_ != nullptr)
    core_->set_oracle_outage_probe([this] {
      if (config_.faults != nullptr && config_.faults->oracle_down(sim_.now()))
        return true;
      return admission_ != nullptr && admission_->open(sim_.now());
    });
}

void AsyncEngine::set_oracle(std::unique_ptr<Oracle> oracle) {
  LAGOVER_EXPECTS(oracle != nullptr);
  LAGOVER_EXPECTS(!started_);
  // A replacement Oracle would bypass the Byzantine claim filter; the
  // adversary layer owns the Oracle stack.
  LAGOVER_EXPECTS(config_.adversary == nullptr);
  oracle_ = std::move(oracle);
  core_ = std::make_unique<ConstructionCore>(overlay_, *protocol_, *oracle_,
                                             config_.timeout_steps);
  // Trace consumers live on trace_bus_, which the rebuilt core
  // re-attaches to, so subscriptions survive the swap (previously a
  // trace installed before set_oracle was silently lost).
  core_->set_trace_bus(&trace_bus_);
  // Re-apply the admission and fault layers around the replacement
  // oracle (pre-run, so the fresh controller's counters lose nothing).
  install_admission_oracle();
  install_fault_hooks();
  install_core_hooks();
}

void AsyncEngine::set_churn(std::unique_ptr<ChurnModel> churn) {
  LAGOVER_EXPECTS(!started_);
  churn_ = std::move(churn);
  sim_.schedule_periodic(1.0, [this] { apply_churn(); });
}

void AsyncEngine::park_offline(NodeId id) {
  LAGOVER_EXPECTS(!started_);
  LAGOVER_EXPECTS(id >= 1 && static_cast<std::size_t>(id) <
                                 overlay_.node_count());
  if (!overlay_.online(id)) return;
  overlay_.set_offline(id);
  core_->reset_node(id);
}

void AsyncEngine::set_sampler(double period,
                              std::function<void(SimTime)> sampler) {
  LAGOVER_EXPECTS(!started_);
  LAGOVER_EXPECTS(period > 0.0);
  LAGOVER_EXPECTS(sampler != nullptr);
  sim_.schedule_periodic(
      period, [this, sampler = std::move(sampler)] { sampler(sim_.now()); });
}

TraceBus::SubscriptionId AsyncEngine::set_trace(
    std::function<void(const TraceEvent&)> trace) {
  LAGOVER_EXPECTS(!started_);
  if (trace_subscription_ != 0) {
    trace_bus_.unsubscribe(trace_subscription_);
    trace_subscription_ = 0;
  }
  if (trace) trace_subscription_ = trace_bus_.subscribe(std::move(trace));
  return trace_subscription_;
}

void AsyncEngine::apply_churn() {
  if (!churn_) return;
  const Round label = static_cast<Round>(sim_.now());
  const ChurnModel::Decision decision =
      churn_->decide(++churn_ticks_, overlay_, rng_);
  for (NodeId id : decision.leave) {
    if (!overlay_.online(id)) continue;
    core_->emit({label, TraceEventType::kChurnLeave, id, kNoNode, false});
    overlay_.set_offline(id);
    core_->reset_node(id);
    grandparent_hint_[id] = kNoNode;
    failover_pending_[id] = 0;
  }
  for (NodeId id : decision.join) {
    if (overlay_.online(id)) continue;
    overlay_.set_online(id);
    core_->reset_node(id);
    // A rejoining node is a new incarnation: state naming its previous
    // life (referrals, cached partners, hints) is now fenced.
    epochs_.bump(id);
    if (defense_active()) suspicion_.note_epoch(id, epochs_.epoch(id));
    core_->emit({label, TraceEventType::kChurnJoin, id, kNoNode, false});
    // Rejoined nodes resume their action loop (their previous wake-up
    // chain died at the offline check).
    schedule_node(id, draw_duration());
  }
  // Churn can invalidate a previous "converged" observation.
  if (!overlay_.all_satisfied()) converged_ = false;
}

double AsyncEngine::run_for(SimTime duration) {
  const telemetry::PerfPhase perf_phase("construction");
  started_ = true;
  const SimTime horizon = sim_.now() + duration;
  while (sim_.step(horizon)) {
  }
  sim_.run_until(horizon);
  return overlay_.satisfied_fraction();
}

double AsyncEngine::draw_duration() {
  return rng_.uniform_real(config_.min_interaction_time,
                           config_.max_interaction_time);
}

double AsyncEngine::backoff_delay(NodeId id) {
  const int attempts = std::min(failed_attempts_[id], 16);
  const double base = std::min(
      config_.backoff_base * static_cast<double>(1u << attempts),
      config_.backoff_max);
  // Jitter desynchronizes retry storms after a window lifts.
  const double jitter =
      rng_.uniform_real(1.0 - config_.backoff_jitter,
                        1.0 + config_.backoff_jitter);
  return base * jitter;
}

void AsyncEngine::schedule_node(NodeId id, SimTime delay) {
  sim_.schedule_after(delay, [this, id] { on_wake(id); });
}

void AsyncEngine::crash_node(NodeId id, double downtime, const char* cause) {
  // The crash orphans the node's children (the overlay is the shared
  // ground truth, as with churn) and erases its session state; the node
  // rejoins after `downtime`. kCrash is emitted BEFORE the structural
  // change so observers (metrics recorders) can still see the children
  // the crash is about to orphan.
  const Round label = static_cast<Round>(sim_.now());
  TraceEvent event{label, TraceEventType::kCrash, id, kNoNode, false};
  event.cause = cause;
  core_->emit(event);
  if (defense_active()) {
    // A crashing parent is instability evidence in proportion to the
    // children it strands. Honest-but-unreliable nodes accrue it too:
    // an unreliable parent is a poor parent regardless of intent.
    const double orphaned =
        static_cast<double>(overlay_.children(id).size());
    if (orphaned > 0.0)
      suspicion_.report(id, orphaned, epochs_.epoch(id), "unstable_parent");
  }
  if (config_.health.failover == health::FailoverPolicy::kLadder) {
    // Arm the ladder for the children this crash orphans: their best
    // local candidate is the crashed parent's own parent.
    const NodeId grandparent = overlay_.parent(id);
    for (const NodeId child : overlay_.children(id)) {
      grandparent_hint_[child] = grandparent;
      failover_pending_[child] = 1;
    }
  }
  overlay_.set_offline(id);
  core_->reset_node(id);
  grandparent_hint_[id] = kNoNode;
  failover_pending_[id] = 0;
  converged_ = false;
  sim_.schedule_after(std::max(downtime, 0.1), [this, id] {
    if (overlay_.online(id)) return;  // churn already rejoined it
    overlay_.set_online(id);
    core_->reset_node(id);
    // New incarnation: fence anything that still names the old one.
    epochs_.bump(id);
    if (defense_active()) suspicion_.note_epoch(id, epochs_.epoch(id));
    core_->emit({static_cast<Round>(sim_.now()), TraceEventType::kRejoin, id,
                 kNoNode, false});
    schedule_node(id, draw_duration());
  });
}

void AsyncEngine::on_wake(NodeId id) {
  TELEM_SCOPE("async.wake");
  telemetry::note_sim_time(sim_.now());
  TELEM_COUNT("async.wakes", 1);
  // Without churn, faults, or adversaries, a converged overlay is final
  // and the wake chains may die out; otherwise they must keep running
  // (convergence is transient).
  if ((converged_ && !churn_ && !config_.faults && !config_.adversary) ||
      !overlay_.online(id))
    return;
  // Flapper adversaries and correlated domain outages take the node
  // down deterministically (pure functions of id and time — no engine
  // RNG), checked before the probabilistic crash roll.
  if (config_.adversary != nullptr &&
      config_.adversary->flapping_down(id, sim_.now())) {
    crash_node(id, config_.adversary->flap_remaining(id, sim_.now()), "flap");
    return;
  }
  if (config_.faults != nullptr) {
    const double outage = config_.faults->domain_crash_outage(id, sim_.now());
    if (outage > 0.0) {
      crash_node(id, outage, "domain");
      return;
    }
  }
  // Crash fault: the node dies mid-action instead of proceeding —
  // attached nodes orphan their subtree, orphans just disappear.
  if (config_.faults != nullptr &&
      config_.faults->crash_roll(id, sim_.now())) {
    crash_node(id, config_.faults->crash_downtime(sim_.now()), "");
    return;
  }
  if (overlay_.has_parent(id)) {
    wake_attached(id);
  } else {
    wake_orphan(id);
  }
  if (overlay_.all_satisfied()) {
    converged_ = true;
    converged_at_ = sim_.now();
  }
}

bool AsyncEngine::suspect_parent(NodeId id) {
  if (config_.health.detection == health::DetectionPolicy::kPhiAccrual &&
      detector_.primed(id)) {
    // Adaptive rule: suspicion accrues with silence relative to the
    // link's own observed poll cadence. The miss counter still runs so
    // metrics stay comparable, but the verdict is phi's.
    ++parent_poll_misses_[id];
    return detector_.suspect(id, sim_.now());
  }
  // Fixed rule (and the fallback while the phi window is unprimed).
  return ++parent_poll_misses_[id] >= config_.parent_poll_miss_limit;
}

void AsyncEngine::detach_suspected(NodeId id, NodeId parent, Round label,
                                   TraceEventType type) {
  parent_poll_misses_[id] = 0;
  converged_ = false;
  // Losing a parent to silence or a stale lease is (mild) instability
  // evidence against it; kParentQuarantined is the ladder's own verdict
  // being executed, not new evidence.
  if (defense_active() && type != TraceEventType::kParentQuarantined)
    suspicion_.report(parent, 1.0, epochs_.epoch(parent), "unstable_parent");
  core_->detach_suspected(id, parent, label, type);
  if (config_.health.failover == health::FailoverPolicy::kLadder)
    failover_pending_[id] = 1;
  schedule_node(id, draw_duration());
}

void AsyncEngine::wake_attached(NodeId id) {
  const Round label = static_cast<Round>(sim_.now());
  // Dead-parent detection: each maintenance wake-up doubles as a poll of
  // the parent. A poll the fault layer cannot deliver (partition or
  // message loss) is a miss; enough misses — fixed count or phi-accrual
  // suspicion, per the health config — and the node concludes its parent
  // is gone and re-orphans itself. Its subtree stays with it and follows
  // once it re-attaches.
  if (config_.faults != nullptr) {
    const NodeId parent = overlay_.parent(id);
    // Epoch fence: a lease on a previous incarnation of the parent is
    // invalid no matter how healthy the link looks — re-orphan at once.
    if (!epochs_.lease_valid(id, parent)) {
      epochs_.note_fence();
      protocol_->note_stale_epoch();
      detach_suspected(id, parent, label, TraceEventType::kEpochFenced);
      return;
    }
    if (!config_.faults->deliver(id, parent, sim_.now())) {
      if (suspect_parent(id)) {
        detach_suspected(id, parent, label, TraceEventType::kParentLost);
        return;
      }
      // Missed poll but not yet suspicious: retry a full maintenance
      // period later.
      schedule_node(id, config_.maintenance_period);
      return;
    }
    parent_poll_misses_[id] = 0;
    detector_.heartbeat(id, sim_.now());
    // Poll replies piggy-back the parent's own parent: the first rung
    // of the failover ladder should the parent die.
    grandparent_hint_[id] = overlay_.parent(parent);
  }
  if (defense_active()) {
    const NodeId parent = overlay_.parent(id);
    // Child-side delay verification: compare the delay promised at the
    // last attach/poll against the chain as actually observed. The
    // promise is then refreshed to the parent's *current* claim, so an
    // honest parent whose upstream grew is charged once for the growth
    // while a liar (whose claim never matches reality) is charged on
    // every poll.
    if (config_.defense.delay_verification && overlay_.connected(id) &&
        promised_delay_[id] > 0) {
      const Delay observed = overlay_.delay_at(id);
      if (observed > promised_delay_[id])
        suspicion_.report(
            parent,
            std::min<double>(observed - promised_delay_[id], 3.0),
            epochs_.epoch(parent), "delay_misreport");
      promised_delay_[id] =
          static_cast<Delay>(protocol_->claimed_delay(overlay_, parent) + 1);
    }
    // Receipt audit: a free-riding parent relays no feed items, so its
    // children see no receipts over a full poll period. (Emulated via
    // the adversary book; the feed layer drops the actual pushes.)
    if (config_.defense.receipt_audit &&
        config_.adversary->withholds_feed(parent))
      suspicion_.report(parent, 1.0, epochs_.epoch(parent), "no_receipts");
    // Ladder consequence: children abandon a barred parent immediately.
    if (suspicion_.barred(parent)) {
      ++quarantine_detaches_;
      detach_suspected(id, parent, label,
                       TraceEventType::kParentQuarantined);
      return;
    }
  }
  // A node's DelayAt knowledge is piggy-backed down its chain, so the
  // self-check runs on the parent's *reported* delay: a delay-liar's
  // direct children believe claim + 1 and stay put while truly violated
  // — the lie hides the damage from its victims. (The defense ladder's
  // delay verification above measures actual arrival times, which the
  // parent cannot fake.)
  std::optional<bool> believed_violated;
  if (config_.adversary != nullptr)
    believed_violated =
        protocol_->claimed_delay(overlay_, overlay_.parent(id)) + 1 >
        overlay_.latency_of(id);
  core_->maintenance_step(id, protocol_->maintenance_patience(), label,
                          believed_violated);
  // Attached nodes only need periodic maintenance checks; detached
  // ones resume the construction loop at their own pace either way.
  schedule_node(id, overlay_.has_parent(id) ? config_.maintenance_period
                                            : draw_duration());
}

void AsyncEngine::wake_orphan(NodeId id) {
  const Round label = static_cast<Round>(sim_.now());
  // Failover ladder: a node orphaned by a suspicion event gets one shot
  // at local recovery (grandparent hint, then cached partners) before
  // rejoining the Oracle-driven loop. Deterministic and only ever armed
  // by faults, so the fault-free path is untouched.
  if (failover_pending_[id] != 0) {
    failover_pending_[id] = 0;
    const NodeId hint = grandparent_hint_[id];
    grandparent_hint_[id] = kNoNode;
    if (core_->failover_step(id, hint, label)) {
      if (config_.faults != nullptr || admission_oracle_ != nullptr)
        failed_attempts_[id] = 0;
      schedule_node(id, config_.maintenance_period);
      return;
    }
  }
  const StepOutcome outcome = core_->orphan_step(id, rng_, label);
  // Admission rejection: the Oracle told this node to come back later.
  // Honor retry-after through the same exponential backoff machinery
  // fault setbacks use (floored at the advised wait), so a flash crowd
  // of rejected orphans spreads out instead of re-stampeding in sync.
  // (Consume the flag unconditionally: the cached-partner fallback can
  // still attach the node after a breaker rejection, and a stale flag
  // must not misfire on a later, unrejected step.)
  if (admission_oracle_ != nullptr && admission_oracle_->consume_rejection() &&
      outcome.partner == kNoNode) {
    ++failed_attempts_[id];
    TELEM_COUNT("engine.admission_deferrals", 1);
    schedule_node(id,
                  std::max(config_.admission.retry_after, backoff_delay(id)));
    return;
  }
  const bool fault_setback =
      config_.faults != nullptr &&
      (!outcome.delivered ||
       (outcome.partner == kNoNode && config_.faults->active(sim_.now())));
  if (fault_setback) {
    ++failed_attempts_[id];
    schedule_node(id, backoff_delay(id));
    return;
  }
  if (config_.faults != nullptr || admission_oracle_ != nullptr)
    failed_attempts_[id] = 0;
  double duration = draw_duration();
  if (config_.network_latency != nullptr && outcome.partner != kNoNode) {
    // The negotiation round-trips with the partner: far peers cost
    // more wall-clock before the next action can start.
    duration += config_.rtt_weight * 2.0 *
                config_.network_latency->latency(id, outcome.partner, rng_);
  }
  schedule_node(id, duration);
}

void AsyncEngine::escalate_starvation(NodeId child) {
  if (static_cast<std::size_t>(child) >= overlay_.node_count()) return;
  if (!overlay_.online(child) || !overlay_.has_parent(child)) return;
  const NodeId parent = overlay_.parent(child);
  ++starvation_detaches_;
  parent_poll_misses_[child] = 0;
  converged_ = false;
  // An overloaded parent is a poor parent for THIS child right now, but
  // only mild evidence against it in general — weight 1, like a missed
  // poll, not like a provable lie.
  if (defense_active())
    suspicion_.report(parent, 1.0, epochs_.epoch(parent), "starved");
  overlay_.detach(child);
  TraceEvent event{static_cast<Round>(sim_.now()), TraceEventType::kParentLost,
                   child, parent, false};
  event.cause = "starved";
  core_->emit(event);
  // No reschedule: the child's own wake chain is alive (attached nodes
  // wake every maintenance period) and its next wake finds it orphaned.
  if (config_.health.failover == health::FailoverPolicy::kLadder)
    failover_pending_[child] = 1;
  TELEM_COUNT("engine.starvation_detaches", 1);
}

std::optional<SimTime> AsyncEngine::run_until_converged(SimTime horizon) {
  const telemetry::PerfPhase perf_phase("construction");
  started_ = true;
  if (overlay_.all_satisfied()) return sim_.now();
  while (!converged_ && sim_.step(horizon)) {
  }
  if (converged_) return converged_at_;
  return std::nullopt;
}

}  // namespace lagover
