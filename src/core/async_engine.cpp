#include "core/async_engine.hpp"

#include "common/error.hpp"

namespace lagover {

AsyncEngine::AsyncEngine(Population population, AsyncConfig config)
    : config_(config),
      overlay_(std::move(population)),
      protocol_(make_protocol(config.algorithm, config.source_mode,
                              config.maintenance_patience)),
      oracle_(make_oracle(config.oracle)),
      core_(std::make_unique<ConstructionCore>(overlay_, *protocol_, *oracle_,
                                               config.timeout_steps)),
      rng_(config.seed) {
  LAGOVER_EXPECTS(config.min_interaction_time > 0.0);
  LAGOVER_EXPECTS(config.max_interaction_time >= config.min_interaction_time);
  LAGOVER_EXPECTS(config.maintenance_period > 0.0);
  // Stagger the first wake-ups so nodes are desynchronized from t = 0.
  for (NodeId id = 1; id < overlay_.node_count(); ++id)
    schedule_node(id, draw_duration());
}

void AsyncEngine::set_oracle(std::unique_ptr<Oracle> oracle) {
  LAGOVER_EXPECTS(oracle != nullptr);
  LAGOVER_EXPECTS(!started_);
  oracle_ = std::move(oracle);
  core_ = std::make_unique<ConstructionCore>(overlay_, *protocol_, *oracle_,
                                             config_.timeout_steps);
}

void AsyncEngine::set_churn(std::unique_ptr<ChurnModel> churn) {
  LAGOVER_EXPECTS(!started_);
  churn_ = std::move(churn);
  sim_.schedule_periodic(1.0, [this] { apply_churn(); });
}

void AsyncEngine::apply_churn() {
  if (!churn_) return;
  const ChurnModel::Decision decision =
      churn_->decide(++churn_ticks_, overlay_, rng_);
  for (NodeId id : decision.leave) {
    if (!overlay_.online(id)) continue;
    overlay_.set_offline(id);
    core_->reset_node(id);
  }
  for (NodeId id : decision.join) {
    if (overlay_.online(id)) continue;
    overlay_.set_online(id);
    core_->reset_node(id);
    // Rejoined nodes resume their action loop (their previous wake-up
    // chain died at the offline check).
    schedule_node(id, draw_duration());
  }
  // Churn can invalidate a previous "converged" observation.
  if (!overlay_.all_satisfied()) converged_ = false;
}

double AsyncEngine::run_for(SimTime duration) {
  started_ = true;
  const SimTime horizon = sim_.now() + duration;
  while (sim_.step(horizon)) {
  }
  sim_.run_until(horizon);
  return overlay_.satisfied_fraction();
}

double AsyncEngine::draw_duration() {
  return rng_.uniform_real(config_.min_interaction_time,
                           config_.max_interaction_time);
}

void AsyncEngine::schedule_node(NodeId id, SimTime delay) {
  sim_.schedule_after(delay, [this, id] { on_wake(id); });
}

void AsyncEngine::on_wake(NodeId id) {
  // Without churn, a converged overlay is final and the wake chains may
  // die out; under churn they must keep running (convergence is
  // transient).
  if ((converged_ && !churn_) || !overlay_.online(id)) return;
  // The round label for trace events is the integer simulated time.
  const Round label = static_cast<Round>(sim_.now());
  if (overlay_.has_parent(id)) {
    core_->maintenance_step(id, protocol_->maintenance_patience(), label);
    // Attached nodes only need periodic maintenance checks; detached
    // ones resume the construction loop at their own pace either way.
    schedule_node(id, overlay_.has_parent(id) ? config_.maintenance_period
                                              : draw_duration());
  } else {
    const NodeId partner = core_->orphan_step(id, rng_, label);
    double duration = draw_duration();
    if (config_.network_latency != nullptr && partner != kNoNode) {
      // The negotiation round-trips with the partner: far peers cost
      // more wall-clock before the next action can start.
      duration += config_.rtt_weight * 2.0 *
                  config_.network_latency->latency(id, partner, rng_);
    }
    schedule_node(id, duration);
  }
  if (overlay_.all_satisfied()) {
    converged_ = true;
    converged_at_ = sim_.now();
  }
}

std::optional<SimTime> AsyncEngine::run_until_converged(SimTime horizon) {
  started_ = true;
  if (overlay_.all_satisfied()) return sim_.now();
  while (!converged_ && sim_.step(horizon)) {
  }
  if (converged_) return converged_at_;
  return std::nullopt;
}

}  // namespace lagover
