#include "core/greedy.hpp"

namespace lagover {

InteractionResult GreedyProtocol::interact(Overlay& overlay, NodeId i,
                                           NodeId j) {
  ++counters_.interactions;
  InteractionResult result;
  if (overlay.in_subtree(j, i)) {
    // Partner inside i's own group: nothing to do, re-consult the Oracle.
    ++counters_.wasted_interactions;
    return result;
  }

  const Delay li = overlay.latency_of(i);
  const Delay lj = overlay.latency_of(j);
  const NodeId pj = overlay.parent(j);

  if (pj == kNoNode) return merge_orphan_groups(overlay, i, j);

  if (lj <= li) {
    // j is at least as strict: i may become j's child (displacing a
    // laxer child when j is saturated).
    if (try_attach_with_displacement(overlay, i, j,
                                     /*require_greedy_order=*/true)) {
      result.attached = true;
      return result;
    }
    // "Unless node i finds a suitable parent, it is referred to k,
    // parent of node j, which is further upstream."
    result.referral = pj;
    return result;
  }

  // l_i < l_j: i is stricter and belongs upstream of j. Reconfigure by
  // inserting i into j's slot under k = Parent(j), preserving the
  // ordering invariant (requires l_k <= l_i, i.e. k at least as strict).
  const bool order_ok =
      pj == kSourceId || overlay.latency_of(pj) <= li;
  if (order_ok &&
      try_replace_at(overlay, i, j, pj, /*allow_child_discard=*/false)) {
    result.attached = true;
    return result;
  }
  result.referral = pj;
  return result;
}

InteractionResult GreedyProtocol::merge_orphan_groups(Overlay& overlay,
                                                      NodeId i, NodeId j) {
  InteractionResult result;
  const Delay li = overlay.latency_of(i);
  const Delay lj = overlay.latency_of(j);

  // The stricter node becomes the upstream (parent) side. On a tie the
  // node with more free capacity hosts (more room for the other group),
  // with id as the final deterministic tie-break.
  NodeId parent = kNoNode;
  NodeId child = kNoNode;
  if (li < lj) {
    parent = i;
    child = j;
  } else if (lj < li) {
    parent = j;
    child = i;
  } else {
    const int free_i = overlay.free_fanout(i);
    const int free_j = overlay.free_fanout(j);
    if (free_i != free_j) {
      parent = free_i > free_j ? i : j;
    } else {
      parent = i < j ? i : j;
    }
    child = parent == i ? j : i;
  }

  if (try_attach_with_displacement(overlay, child, parent,
                                   /*require_greedy_order=*/true)) {
    result.attached = overlay.has_parent(i);
    return result;
  }
  // Equal constraints allow either orientation; retry reversed.
  if (li == lj &&
      try_attach_with_displacement(overlay, parent, child,
                                   /*require_greedy_order=*/true)) {
    result.attached = overlay.has_parent(i);
  }
  return result;
}

}  // namespace lagover
