// Round-based LagOver construction engine (paper Section 2.1.1's
// "decoupled time": construction proceeds in rounds, independent of the
// latency unit). Each round:
//
//   1. churn is applied (paper Section 5.3 model, pluggable),
//   2. connected nodes run maintenance (Algorithm 1 / hybrid timeout),
//   3. every parentless chain root performs one step of its construction
//      loop: direct source contact when its timeout has fired or it was
//      referred to the source, otherwise one interaction with a partner
//      from its last referral or the Oracle.
//
// The engine is deterministic given (population, config seed).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "core/admission.hpp"
#include "core/construction_core.hpp"
#include "core/oracle.hpp"
#include "core/overlay.hpp"
#include "core/protocol.hpp"
#include "core/types.hpp"
#include "core/validator.hpp"
#include "fault/byzantine.hpp"
#include "fault/fault_injector.hpp"
#include "health/health.hpp"
#include "health/suspicion.hpp"

namespace lagover {

/// Tunable parameters of a construction run.
struct EngineConfig {
  AlgorithmKind algorithm = AlgorithmKind::kHybrid;
  OracleKind oracle = OracleKind::kRandomDelay;
  SourceMode source_mode = SourceMode::kPullOnly;
  /// Rounds an orphan waits (without acquiring a parent) before
  /// contacting the source directly.
  int timeout_rounds = 4;
  /// Hybrid maintenance damping: consecutive violated rounds tolerated
  /// before discarding the parent (greedy always reacts immediately).
  int maintenance_patience = 1;
  /// Allow the orphaning-displacement move (Protocol docs); disabling it
  /// approximates the paper's literally-described move set for ablation.
  bool orphaning_displacement = true;
  /// Stale chain knowledge (paper Section 2.1.3 ablation): maintenance
  /// decisions use each node's DelayAt/Root as observed this many
  /// rounds ago — piggy-backed information takes time to ride down the
  /// chain. 0 = instantaneous (the paper's simulator and our default).
  int knowledge_lag = 0;
  /// Optional chaos layer (clocked by the round number). Null or an
  /// empty FaultPlan leaves rounds byte-identical to the fault-free
  /// engine: no hook fires and no extra engine-RNG draw happens.
  std::shared_ptr<fault::FaultInjector> faults;
  /// Consecutive rounds an attached node tolerates undeliverable parent
  /// polls (partition / loss) before declaring the parent dead and
  /// re-orphaning itself. (The fixed fallback when health.detection
  /// selects phi-accrual.)
  int parent_poll_miss_limit = 3;
  /// Health layer: failure detection + failover policy. Defaults
  /// reproduce the legacy behavior byte-for-byte.
  health::HealthConfig health;
  /// Byzantine adversary layer (liars, free-riders, flappers). Null or
  /// an empty book is normalized away: no hook installs, no RNG-stream
  /// change, rounds stay byte-identical to an adversary-free engine.
  std::shared_ptr<fault::AdversaryBook> adversary;
  /// Defense ladder (suspicion scoring, quarantine, Oracle plausibility
  /// filter). Engaged only when both defense.enabled and an adversary
  /// layer are present.
  health::DefenseConfig defense;
  /// Oracle admission control (rate limiting + circuit breaker). An
  /// empty config (no rate limit) installs nothing: no wrapper, no
  /// RNG-stream change, rounds stay byte-identical.
  AdmissionConfig admission;
  std::uint64_t seed = 1;
};

/// Per-round snapshot used by convergence tracking.
struct RoundStats {
  Round round = 0;
  std::size_t online = 0;
  std::size_t satisfied = 0;
  std::size_t orphan_roots = 0;
  double satisfied_fraction = 1.0;
};

/// Membership-dynamics model: returns which nodes leave and which
/// (offline) nodes rejoin this round.
class ChurnModel {
 public:
  virtual ~ChurnModel() = default;
  struct Decision {
    std::vector<NodeId> leave;
    std::vector<NodeId> join;
  };
  virtual Decision decide(Round round, const Overlay& overlay, Rng& rng) = 0;
};

/// Drives one LagOver construction run.
class LAGOVER_THREAD_HOSTILE Engine {
 public:
  Engine(Population population, EngineConfig config);
  /// Closes the health-observatory run, when one was registered.
  ~Engine();

  // The construction core holds references into this object, so the
  // engine is pinned in place (heap-allocate it to hand it around).
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  Engine(Engine&&) = delete;
  Engine& operator=(Engine&&) = delete;

  /// Replaces the Oracle (e.g. with a DHT- or gossip-backed
  /// realization). Must be called before the first round.
  void set_oracle(std::unique_ptr<Oracle> oracle);

  /// Installs a churn model; nullptr disables churn.
  void set_churn(std::unique_ptr<ChurnModel> churn);

  /// Installs a trace observer (nullptr to disable). Legacy single
  /// -observer entry point, now a named subscription on trace_bus():
  /// calling it again releases the previous subscription (its slot and
  /// retention-ring config with it) before installing the replacement;
  /// additional consumers should subscribe to the bus directly. Returns
  /// the new subscription id (0 when disabling) so callers can hand the
  /// slot to trace_bus().unsubscribe() themselves.
  TraceBus::SubscriptionId set_trace(
      std::function<void(const TraceEvent&)> trace);

  /// The engine's trace event bus. Subscriptions survive set_oracle()
  /// rebuilds — the core is re-pointed at the same bus.
  TraceBus& trace_bus() noexcept { return trace_bus_; }

  /// Paper-invariant audit sink. LAGOVER_AUDIT builds publish one event
  /// per violation per round; the bus itself exists in every build so
  /// subscribers need no conditional compilation.
  AuditBus& audit_bus() noexcept { return audit_bus_; }

  /// Total invariant violations seen by the per-round audit (always 0
  /// in builds without LAGOVER_AUDIT).
  std::uint64_t audit_violations() const noexcept {
    return audit_violations_;
  }

  /// When enabled, every round's RoundStats is retained in history().
  void set_record_history(bool record) { record_history_ = record; }

  const Overlay& overlay() const noexcept { return overlay_; }
  Overlay& overlay() noexcept { return overlay_; }
  const Protocol& protocol() const noexcept { return *protocol_; }
  const Oracle& oracle() const noexcept { return *oracle_; }
  Round round() const noexcept { return round_; }
  std::uint64_t maintenance_detaches() const noexcept {
    return core_->maintenance_detaches();
  }
  const std::vector<RoundStats>& history() const noexcept { return history_; }
  const EngineConfig& config() const noexcept { return config_; }

  /// Health-layer state, for validators and metrics.
  const health::EpochBook& epochs() const noexcept { return epochs_; }
  const health::PhiAccrualDetector& detector() const noexcept {
    return detector_;
  }
  const ConstructionCore& core() const noexcept { return *core_; }

  const fault::AdversaryBook* adversary() const noexcept {
    return config_.adversary.get();
  }
  /// Defense-ladder state (empty book when defenses are off).
  const health::SuspicionBook& suspicion() const noexcept {
    return suspicion_;
  }
  /// The claim-filtered Oracle, when an adversary layer is installed
  /// (null otherwise); exposes barred/implausible skip counters.
  const fault::ByzantineOracle* byzantine_oracle() const noexcept {
    return byzantine_oracle_;
  }
  /// Children that abandoned a quarantined/blacklisted parent.
  std::uint64_t quarantine_detaches() const noexcept {
    return quarantine_detaches_;
  }

  /// Oracle admission controller, when admission control is configured
  /// (null otherwise); exposes rate/breaker counters.
  const AdmissionController* admission() const noexcept {
    return admission_.get();
  }
  /// The admission-wrapped Oracle (null without admission control);
  /// exposes the stale-served counter.
  const AdmittedOracle* admitted_oracle() const noexcept {
    return admission_oracle_;
  }
  /// Children the feed layer detached from a parent that starved them
  /// (graceful-degradation escalation).
  std::uint64_t starvation_detaches() const noexcept {
    return starvation_detaches_;
  }

  /// Escalation entry point for the feed layer's degradation ladder: a
  /// persistently starved child abandons its overloaded parent (mild
  /// suspicion evidence when defenses run) and re-enters construction,
  /// spreading load across the tree. No-op when the child is offline or
  /// already parentless.
  void escalate_starvation(NodeId child);

  /// Executes one construction round and returns its statistics.
  RoundStats run_round();

  /// Runs rounds until every online consumer is satisfied or max_rounds
  /// is exhausted. Returns the converged round, or nullopt on timeout
  /// ("did not converge" in the paper's evaluation).
  std::optional<Round> run_until_converged(Round max_rounds);

 private:
  void apply_churn();
  /// Wraps the Oracle in the Byzantine claim filter (before the fault
  /// layer wraps it again, so outages apply on top of lies).
  void install_adversary_oracle();
  /// Installs the claimed-delay hook on the protocol and the reject /
  /// defense hooks on the (final) construction core. Must run after
  /// every core_ rebuild is done.
  void install_adversary_hooks();
  void install_fault_hooks();
  void install_core_hooks();
  /// Wraps the Oracle in the admission-control decorator (between the
  /// Byzantine filter and the fault layer: rate limiting applies to the
  /// service itself, outages on top of it).
  void install_admission_oracle();
  void apply_fault_rejoins();
  /// Deterministic down-states: flapper duty cycles and correlated
  /// domain-outage windows, checked once per round before the
  /// probabilistic crash rolls.
  void apply_scheduled_crashes();
  bool defense_active() const noexcept {
    return config_.adversary != nullptr && config_.defense.enabled;
  }
  /// Crashes node i this round: offline + scheduled rejoin after
  /// `downtime` rounds (floored at 1). `cause` tags the kCrash event
  /// ("" = plain fault-plan crash, "flap" = adversarial flapper,
  /// "domain" = correlated domain outage).
  void crash_node(NodeId id, double downtime, const char* cause);
  /// One undeliverable poll from id to its parent: updates the active
  /// detection policy's state and reports whether the parent is now
  /// suspected dead.
  bool suspect_parent(NodeId id);
  /// Re-orphans id after a suspicion / epoch fence, arming the failover
  /// ladder when configured.
  void detach_suspected(NodeId id, NodeId parent, TraceEventType type);
  /// Runs the paper-invariant audit against the current overlay state
  /// and publishes violations (called per round in LAGOVER_AUDIT builds).
  void audit_round();
  /// Registers this run with the active OverlayHealthRecorder, if any
  /// (no recorder = no detour; default runs stay byte-identical).
  void register_health_run();

  EngineConfig config_;
  Overlay overlay_;
  std::unique_ptr<Protocol> protocol_;
  std::unique_ptr<Oracle> oracle_;
  std::unique_ptr<ConstructionCore> core_;
  std::unique_ptr<ChurnModel> churn_;
  TraceBus trace_bus_;
  /// set_trace()'s subscription on trace_bus_ (0 = none installed).
  TraceBus::SubscriptionId trace_subscription_ = 0;
  AuditBus audit_bus_;
  std::uint64_t audit_violations_ = 0;
  /// Health-observatory run id (0 = no recorder active at construction).
  std::uint64_t health_run_ = 0;
  Rng rng_;

  Round round_ = 0;
  bool started_ = false;
  bool record_history_ = false;
  std::vector<RoundStats> history_;
  /// Ring buffer of per-node violation observations for knowledge_lag
  /// (entry k: the snapshot taken k rounds ago, newest first).
  std::deque<std::vector<char>> violation_snapshots_;
  /// Fault-layer state (sized only when config_.faults is set).
  std::vector<int> parent_poll_misses_;
  std::vector<std::pair<Round, NodeId>> crash_rejoins_;
  /// Health layer (always sized; pure bookkeeping without faults).
  health::EpochBook epochs_;
  health::PhiAccrualDetector detector_;
  /// Last known parent-of-parent per node, learned on successful polls.
  std::vector<NodeId> grandparent_hint_;
  /// Armed by a suspicion event; the node's next orphan turn tries the
  /// failover ladder before the Oracle.
  std::vector<char> failover_pending_;
  /// Defense-ladder scores and trust states (sized always, inert unless
  /// defense_active()).
  health::SuspicionBook suspicion_;
  /// Delay each attached node was promised at attach time (parent's
  /// claimed delay + 1); -1 = no active promise. Maintained only while
  /// the defense ladder runs delay verification.
  std::vector<Delay> promised_delay_;
  /// Borrowed view of the claim-filtering Oracle (owned by oracle_,
  /// possibly through the fault layer's wrapper). Null without an
  /// adversary layer.
  fault::ByzantineOracle* byzantine_oracle_ = nullptr;
  std::uint64_t quarantine_detaches_ = 0;
  /// Admission layer (null unless config_.admission is non-empty).
  std::shared_ptr<AdmissionController> admission_;
  /// Borrowed view of the admission decorator (owned by oracle_,
  /// possibly through the fault layer's wrapper).
  AdmittedOracle* admission_oracle_ = nullptr;
  /// Per-node retry-after deadline (round before which a rejected node
  /// sits out) and consecutive-rejection count driving the exponential
  /// retry spread. Sized only when admission control is installed.
  std::vector<Round> admission_defer_;
  std::vector<int> admission_attempts_;
  std::uint64_t starvation_detaches_ = 0;
};

/// Convenience: builds the protocol for an algorithm kind.
std::unique_ptr<Protocol> make_protocol(AlgorithmKind kind,
                                        SourceMode source_mode,
                                        int maintenance_patience);

}  // namespace lagover
