#include "core/oracle.hpp"

#include <vector>

namespace lagover {

bool DirectoryOracle::eligible(OracleKind kind, NodeId querier,
                               NodeId candidate, const Overlay& overlay) {
  if (candidate == querier || candidate == kSourceId) return false;
  if (!overlay.online(candidate)) return false;
  switch (kind) {
    case OracleKind::kRandom:
      return true;
    case OracleKind::kRandomCapacity:
      return overlay.free_fanout(candidate) > 0;
    case OracleKind::kRandomDelayCapacity:
      return overlay.free_fanout(candidate) > 0 &&
             overlay.delay_at(candidate) < overlay.latency_of(querier);
    case OracleKind::kRandomDelay:
      return overlay.delay_at(candidate) < overlay.latency_of(querier);
  }
  return false;
}

std::optional<NodeId> DirectoryOracle::sample_impl(NodeId querier,
                                                   const Overlay& overlay,
                                                   Rng& rng) {
  // Reservoir-of-one over eligible candidates: uniform without building
  // the full candidate list.
  std::optional<NodeId> chosen;
  std::uint64_t seen = 0;
  for (NodeId id = 1; id < overlay.node_count(); ++id) {
    if (!eligible(kind_, querier, id, overlay)) continue;
    ++seen;
    if (rng.next_below(seen) == 0) chosen = id;
  }
  return chosen;
}

std::unique_ptr<Oracle> make_oracle(OracleKind kind) {
  return std::make_unique<DirectoryOracle>(kind);
}

}  // namespace lagover
