#include "baseline/feedtree.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "common/error.hpp"
#include "dht/hash_space.hpp"

namespace lagover::baseline {

using dht::Address;
using dht::Key;

FeedTreeReport build_and_analyze_feedtree(const Population& population,
                                          const FeedTreeConfig& config) {
  validate(population);
  LAGOVER_EXPECTS(config.feeds >= 1);
  const std::size_t n = population.consumers.size();
  LAGOVER_EXPECTS(n >= 1);

  // All consumers join one DHT ring regardless of which feed they want —
  // the structural premise of FeedTree that the paper critiques.
  dht::ChordRing ring(n, config.chord, config.seed);
  const bool stable = ring.run_until_stable(500.0);
  LAGOVER_ASSERT_MSG(stable, "feedtree ring failed to stabilize");
  // Extra warm-up so finger tables converge and routes are logarithmic.
  ring.simulator().run_until(ring.simulator().now() + config.warmup);

  FeedTreeReport report;
  report.ring_maintenance_messages = ring.network().total_messages();

  for (std::size_t feed = 0; feed < config.feeds; ++feed) {
    const Key rendezvous_key =
        dht::hash_string("feed-" + std::to_string(feed));
    // Resolve the rendezvous: the ring member owning the feed key.
    Address rendezvous = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (ring.node(i).owns(rendezvous_key)) {
        rendezvous = ring.node(i).address();
        break;
      }
    }

    // Scribe join: each subscriber routes toward the rendezvous; the
    // union of (reverse) routes is the multicast tree. parent[] points
    // one hop closer to the rendezvous.
    std::map<Address, Address> parent;
    std::vector<Address> subscribers;
    for (std::size_t i = 0; i < n; ++i) {
      // Consumer ids are 1-based; addresses are 0-based ring indices.
      if ((i % config.feeds) != feed) continue;
      subscribers.push_back(ring.node(i).address());
      Address cursor = ring.node(i).address();
      std::size_t guard = 0;
      while (cursor != rendezvous) {
        LAGOVER_ASSERT_MSG(++guard <= 2 * n,
                           "scribe join route failed to terminate");
        if (parent.count(cursor) != 0) break;  // joined an existing branch
        const Address next = ring.node(cursor).route_next(rendezvous_key);
        LAGOVER_ASSERT(next != cursor || cursor == rendezvous);
        parent[cursor] = next;
        cursor = next;
      }
    }

    PerFeedStats stats;
    stats.feed = feed;
    stats.subscribers = subscribers.size();

    // Tree membership and per-node load (children counts).
    std::map<Address, int> children_count;
    std::map<Address, int> depth;  // hops from the rendezvous
    auto depth_of = [&](Address a) {
      int d = 0;
      Address cursor = a;
      while (cursor != rendezvous) {
        cursor = parent.at(cursor);
        ++d;
      }
      return d;
    };
    for (const auto& [child, p] : parent) {
      ++children_count[p];
      depth[child] = 0;  // filled below
    }
    depth[rendezvous] = 0;
    for (auto& [node, d] : depth) d = depth_of(node);

    stats.tree_nodes = depth.size();
    for (const auto& [node, d] : depth) {
      const bool is_subscriber =
          std::find(subscribers.begin(), subscribers.end(), node) !=
          subscribers.end();
      if (!is_subscriber && node != rendezvous) ++stats.pure_forwarders;
      stats.max_depth = std::max(stats.max_depth, d);
    }
    double depth_sum = 0.0;
    for (Address s : subscribers) depth_sum += depth.at(s);
    stats.mean_depth =
        subscribers.empty()
            ? 0.0
            : depth_sum / static_cast<double>(subscribers.size());

    for (const auto& [node, count] : children_count) {
      stats.max_fanout = std::max(stats.max_fanout, count);
      // Scribe ignores declared fanout budgets; count how often the tree
      // overloads a consumer relative to what it volunteered.
      const auto& spec = population.consumers[node];
      if (count > spec.constraints.fanout) ++stats.fanout_violations;
    }

    // Delivery delay of a subscriber at depth d is d + 1 (rendezvous
    // poll costs one period, each forwarding hop one unit).
    for (Address s : subscribers) {
      const auto& spec = population.consumers[s];
      if (depth.at(s) + 1 > spec.constraints.latency)
        ++stats.latency_violations;
    }

    report.total_pure_forwarders += stats.pure_forwarders;
    report.total_latency_violations += stats.latency_violations;
    report.total_fanout_violations += stats.fanout_violations;
    report.feeds.push_back(stats);
  }
  return report;
}

}  // namespace lagover::baseline
