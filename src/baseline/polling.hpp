// The status-quo baseline the paper's introduction argues against:
// every consumer polls the source directly (RSS as deployed). Each
// consumer with latency constraint l polls at period l — the laxest
// schedule that still meets its staleness bound — so the source absorbs
// sum(1/l_i) requests per time unit, growing linearly with the
// population ("If a million people subscribe ... their constant hits on
// the site could overwhelm our servers").
#pragma once

#include "core/types.hpp"
#include "feed/dissemination.hpp"

namespace lagover::baseline {

struct AllPollAnalysis {
  double source_requests_per_unit = 0.0;  ///< sum over consumers of 1/l_i
  std::size_t consumers = 0;
};

/// Closed-form request rate of direct polling.
AllPollAnalysis analyze_all_poll(const Population& population);

/// Message-level simulation of the same baseline: every consumer polls a
/// FeedSource at period l_i with random phase. Reported in the same
/// shape as run_dissemination so benches can print both side by side
/// (push_messages is always 0; every consumer is a "poller").
feed::DisseminationReport run_all_poll(const Population& population,
                                       const feed::DisseminationConfig& config,
                                       SimTime duration);

}  // namespace lagover::baseline
