// FeedTree-style baseline (Sandler et al., IPTPS'05): feed dissemination
// over Scribe multicast trees built on a DHT that *all* consumers of
// *all* feeds join. The paper's related-work critique (Section 6): the
// underlying DHT churns independently of the per-feed trees, and peers
// uninterested in a feed still forward its traffic; moreover Scribe
// trees ignore individual latency and fanout constraints. This module
// materializes Scribe trees over our Chord ring and measures exactly
// those effects for comparison against LagOver.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "dht/chord.hpp"

namespace lagover::baseline {

struct FeedTreeConfig {
  std::size_t feeds = 4;  ///< consumers are spread round-robin over feeds
  dht::ChordConfig chord;
  std::uint64_t seed = 1;
  /// Simulated time to let the ring stabilize fingers before building
  /// trees (fingers drive route shape).
  double warmup = 150.0;
};

struct PerFeedStats {
  std::size_t feed = 0;
  std::size_t subscribers = 0;
  std::size_t tree_nodes = 0;  ///< rendezvous + forwarders + subscribers
  std::size_t pure_forwarders = 0;  ///< tree members not subscribed
  int max_depth = 0;    ///< delivery hops from the rendezvous
  double mean_depth = 0.0;
  int max_fanout = 0;   ///< children per tree node (unbounded in Scribe)
  std::size_t latency_violations = 0;  ///< delivery depth + 1 > l_i
  std::size_t fanout_violations = 0;   ///< tree load > declared fanout
};

struct FeedTreeReport {
  std::vector<PerFeedStats> feeds;
  std::size_t total_pure_forwarders = 0;
  std::size_t total_latency_violations = 0;
  std::size_t total_fanout_violations = 0;
  std::uint64_t ring_maintenance_messages = 0;
};

/// Builds one Scribe tree per feed over a Chord ring of all consumers
/// and reports structure and constraint violations. Consumer i
/// subscribes to feed (i - 1) % feeds; delivery delay of a subscriber at
/// tree depth d is d + 1 time units (rendezvous polls the source at
/// period 1, each forwarding hop costs 1) — directly comparable to the
/// LagOver delay model.
FeedTreeReport build_and_analyze_feedtree(const Population& population,
                                          const FeedTreeConfig& config);

}  // namespace lagover::baseline
