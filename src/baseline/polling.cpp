#include "baseline/polling.hpp"

#include <functional>
#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "feed/feed.hpp"

namespace lagover::baseline {

AllPollAnalysis analyze_all_poll(const Population& population) {
  AllPollAnalysis analysis;
  analysis.consumers = population.consumers.size();
  for (const NodeSpec& spec : population.consumers)
    analysis.source_requests_per_unit +=
        1.0 / static_cast<double>(spec.constraints.latency);
  return analysis;
}

feed::DisseminationReport run_all_poll(
    const Population& population, const feed::DisseminationConfig& config,
    SimTime duration) {
  validate(population);
  Simulator sim;
  feed::FeedSource source(sim, config.source);
  feed::StalenessTracker tracker(population.consumers.size() + 1);
  Rng rng(config.seed ^ 0xA77B011ULL);
  std::vector<std::uint64_t> last_pulled(population.consumers.size() + 1, 0);

  source.start();
  // The loop bodies must not own themselves (a shared_ptr captured by
  // the function it points to never dies); this vector is the owner and
  // the lambdas hold weak references.
  std::vector<std::shared_ptr<std::function<void()>>> loops;
  loops.reserve(population.consumers.size());
  for (const NodeSpec& spec : population.consumers) {
    const double period = static_cast<double>(spec.constraints.latency);
    const double phase = rng.uniform_real(0.0, period);
    const NodeId id = spec.id;
    // Self-rescheduling poll loop per consumer.
    auto poll = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak = poll;
    *poll = [&sim, &source, &tracker, &last_pulled, id, period, weak] {
      for (const feed::FeedItem& item : source.pull(last_pulled[id])) {
        last_pulled[id] = item.seq;
        tracker.record(id, item, sim.now());
      }
      if (auto self = weak.lock()) sim.schedule_after(period, *self);
    };
    sim.schedule_after(phase, *poll);
    loops.push_back(std::move(poll));
  }

  sim.run_until(duration);

  feed::DisseminationReport report;
  report.duration = duration;
  report.items_published = source.published();
  report.source_requests = source.requests();
  report.source_empty_requests = source.empty_requests();
  report.source_request_rate =
      duration > 0.0 ? static_cast<double>(source.requests()) / duration : 0.0;
  report.push_messages = 0;
  report.pollers = population.consumers.size();
  for (const NodeSpec& spec : population.consumers) {
    feed::NodeDeliveryStats stats;
    stats.node = spec.id;
    stats.items = tracker.items_received(spec.id);
    stats.max_staleness = tracker.max_staleness(spec.id);
    stats.mean_staleness = tracker.mean_staleness(spec.id);
    stats.latency_constraint = spec.constraints.latency;
    stats.constraint_met =
        stats.max_staleness <=
        static_cast<double>(stats.latency_constraint) + 1e-9;
    if (!stats.constraint_met) ++report.violations;
    report.nodes.push_back(stats);
  }
  return report;
}

}  // namespace lagover::baseline
