// Link-latency models for the simulated network. The paper's evaluation
// abstracts latency as overlay hops; the network substrate lets the
// feed-dissemination and DHT experiments attach concrete per-message
// delays (constant, jittered, or geometric from synthetic coordinates).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace lagover::net {

/// Network endpoint identifier (distinct from overlay NodeId: the DHT
/// directory ring and the consumers live in different address spaces).
using Address = std::uint32_t;

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  /// One-way delivery delay for a message from -> to, in time units.
  virtual double latency(Address from, Address to, Rng& rng) = 0;
};

/// Fixed one-way delay on every link.
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(double delay) : delay_(delay) {
    LAGOVER_EXPECTS(delay >= 0.0);
  }
  double latency(Address, Address, Rng&) override { return delay_; }

 private:
  double delay_;
};

/// Uniformly jittered delay in [lo, hi).
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(double lo, double hi) : lo_(lo), hi_(hi) {
    LAGOVER_EXPECTS(lo >= 0.0 && hi >= lo);
  }
  double latency(Address, Address, Rng& rng) override {
    return rng.uniform_real(lo_, hi_);
  }

 private:
  double lo_;
  double hi_;
};

/// Synthetic-coordinate model: each address is assigned a random point
/// in the unit square; latency = base + scale * euclidean distance.
/// A cheap stand-in for geographic RTT structure (triangle inequality
/// holds, near nodes are fast).
class CoordinateLatency final : public LatencyModel {
 public:
  CoordinateLatency(std::size_t max_addresses, double base, double scale,
                    std::uint64_t seed);
  double latency(Address from, Address to, Rng& rng) override;

 private:
  struct Point {
    double x;
    double y;
  };
  std::vector<Point> points_;
  double base_;
  double scale_;
};

}  // namespace lagover::net
