#include "net/latency_model.hpp"

#include <cmath>

namespace lagover::net {

CoordinateLatency::CoordinateLatency(std::size_t max_addresses, double base,
                                     double scale, std::uint64_t seed)
    : base_(base), scale_(scale) {
  LAGOVER_EXPECTS(base >= 0.0 && scale >= 0.0);
  Rng rng(seed);
  points_.reserve(max_addresses);
  for (std::size_t i = 0; i < max_addresses; ++i)
    points_.push_back({rng.uniform01(), rng.uniform01()});
}

double CoordinateLatency::latency(Address from, Address to, Rng&) {
  LAGOVER_EXPECTS(from < points_.size() && to < points_.size());
  const double dx = points_[from].x - points_[to].x;
  const double dy = points_[from].y - points_[to].y;
  return base_ + scale_ * std::sqrt(dx * dx + dy * dy);
}

}  // namespace lagover::net
