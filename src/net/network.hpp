// Simulated message-passing network on top of the discrete-event kernel.
// Messages are delivered asynchronously after a LatencyModel-determined
// delay; per-address traffic counters feed the load experiments
// (the RSS "bandwidth overload problem" is ultimately a message-count
// argument).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "net/latency_model.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace lagover::net {

struct TrafficCounters {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

/// Verdict of the fault layer on one message (see set_fault_filter):
/// drop it, delay it by extra time units, and/or deliver it twice.
struct FaultDecision {
  bool drop = false;
  double extra_delay = 0.0;
  bool duplicate = false;
};

/// Per-message fault hook. Kept as a plain std::function so the network
/// layer stays independent of the fault subsystem that implements it.
using FaultFilter = std::function<FaultDecision(Address from, Address to)>;

/// Per-node capacity limits (the overload model): a windowed outbound
/// send budget and a bound on a receiver's in-flight inbound queue.
/// Zero means unlimited; a default-constructed value leaves the send
/// path exactly the unlimited one.
struct CapacityLimits {
  /// Messages an address may send per unit-time window (0 = unlimited).
  std::uint32_t send_budget = 0;
  /// In-flight messages a receiver will accept before new arrivals are
  /// turned away at the door (0 = unbounded).
  std::uint32_t queue_limit = 0;

  bool empty() const noexcept { return send_budget == 0 && queue_limit == 0; }
};

/// Typed network: Message is any copyable payload type. Undeliverable
/// messages (no registered handler at arrival time) are dropped and
/// counted, modelling crashes mid-flight.
template <typename Message>
class LAGOVER_THREAD_HOSTILE Network {
 public:
  using Handler = std::function<void(Address from, const Message&)>;

  Network(Simulator& sim, std::unique_ptr<LatencyModel> latency,
          std::uint64_t seed)
      : sim_(sim), latency_(std::move(latency)), rng_(seed) {
    LAGOVER_EXPECTS(latency_ != nullptr);
  }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers (or replaces) the message handler for an address.
  void register_node(Address address, Handler handler) {
    LAGOVER_EXPECTS(handler != nullptr);
    handlers_[address] = std::move(handler);
  }

  /// Removes the handler; in-flight messages to it will be dropped.
  void deregister_node(Address address) { handlers_.erase(address); }

  bool registered(Address address) const {
    return handlers_.count(address) != 0;
  }

  /// Installs (or clears, with nullptr) the per-message fault hook.
  /// Without a filter the send path is exactly the fault-free one.
  void set_fault_filter(FaultFilter filter) {
    fault_filter_ = std::move(filter);
  }

  /// Installs uniform per-node capacity limits (an empty value clears
  /// them and restores the unlimited send path).
  void set_capacity(CapacityLimits limits) {
    capacity_ = limits;
    if (capacity_.empty()) {
      send_windows_.clear();
      in_flight_.clear();
    }
  }
  const CapacityLimits& capacity() const noexcept { return capacity_; }

  /// Sends a message; delivery is scheduled after the model latency.
  /// `size_bytes` is accounting-only (0 = count messages, not bytes).
  /// With capacity limits installed, a sender over its windowed budget
  /// sheds the message and a receiver at its in-flight bound refuses it
  /// — both before the fault filter, which models transport faults on
  /// messages that actually left.
  void send(Address from, Address to, Message message,
            std::size_t size_bytes = 0) {
    if (!capacity_.empty() && !admit(from, to)) return;
    auto& sent = counters_[from];
    ++sent.messages_sent;
    sent.bytes_sent += size_bytes;
    ++total_messages_;
    TELEM_COUNT("net.messages_sent", 1);
    double delay = latency_->latency(from, to, rng_);
    bool duplicate = false;
    if (fault_filter_) {
      const FaultDecision fate = fault_filter_(from, to);
      if (fate.drop) {
        ++fault_dropped_;
        TELEM_COUNT("net.fault_dropped", 1);
        // The message left the sender but never arrives: release the
        // in-flight slot admit() reserved at the receiver.
        if (capacity_.queue_limit != 0) {
          auto& depth = in_flight_[to];
          if (depth > 0) --depth;
        }
        return;
      }
      if (fate.extra_delay > 0.0) {
        ++fault_delayed_;
        TELEM_COUNT("net.fault_delayed", 1);
        delay += fate.extra_delay;
      }
      duplicate = fate.duplicate;
    }
    schedule_delivery(from, to, message, size_bytes, delay);
    if (duplicate) {
      ++fault_duplicated_;
      TELEM_COUNT("net.fault_duplicated", 1);
      schedule_delivery(from, to, std::move(message), size_bytes, delay);
    }
  }

  const TrafficCounters& counters(Address address) const {
    static const TrafficCounters kEmpty{};
    const auto it = counters_.find(address);
    return it == counters_.end() ? kEmpty : it->second;
  }

  std::uint64_t total_messages() const noexcept { return total_messages_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  /// Messages lost / delayed / cloned by the fault filter.
  std::uint64_t fault_dropped() const noexcept { return fault_dropped_; }
  std::uint64_t fault_delayed() const noexcept { return fault_delayed_; }
  std::uint64_t fault_duplicated() const noexcept { return fault_duplicated_; }
  /// Messages shed at the sender (send budget exhausted) and refused at
  /// the receiver (in-flight queue full) by the capacity model.
  std::uint64_t shed() const noexcept { return shed_; }
  std::uint64_t queue_dropped() const noexcept { return queue_dropped_; }
  /// Current in-flight inbound queue depth of an address.
  std::uint64_t queue_depth(Address address) const {
    const auto it = in_flight_.find(address);
    return it == in_flight_.end() ? 0 : it->second;
  }
  Simulator& simulator() noexcept { return sim_; }

 private:
  /// Capacity admission for one message: charges the sender's windowed
  /// budget and reserves a slot in the receiver's in-flight queue.
  bool admit(Address from, Address to) {
    if (capacity_.send_budget != 0) {
      const auto window = static_cast<std::int64_t>(sim_.now());
      auto& state = send_windows_[from];
      if (state.first != window) state = {window, 0};
      if (state.second >= capacity_.send_budget) {
        ++shed_;
        TELEM_COUNT("net.shed", 1);
        return false;
      }
      ++state.second;
    }
    if (capacity_.queue_limit != 0) {
      auto& depth = in_flight_[to];
      if (depth >= capacity_.queue_limit) {
        ++queue_dropped_;
        TELEM_COUNT("net.queue_dropped", 1);
        return false;
      }
      ++depth;
      TELEM_GAUGE("net.queue_depth", static_cast<double>(depth));
    }
    return true;
  }

  void schedule_delivery(Address from, Address to, Message message,
                         std::size_t size_bytes, double delay) {
    sim_.schedule_after(
        delay, [this, from, to, message = std::move(message), size_bytes] {
          if (capacity_.queue_limit != 0) {
            auto& depth = in_flight_[to];
            if (depth > 0) --depth;
            TELEM_GAUGE("net.queue_depth", static_cast<double>(depth));
          }
          const auto it = handlers_.find(to);
          if (it == handlers_.end()) {
            ++dropped_;
            TELEM_COUNT("net.dropped_dead", 1);
            return;
          }
          auto& received = counters_[to];
          ++received.messages_received;
          received.bytes_received += size_bytes;
          TELEM_COUNT("net.messages_delivered", 1);
          it->second(from, message);
        });
  }

  Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  // Ordered maps (determinism lint): keyed access only today, but the
  // unordered_ variants are banned in src/net so a future iteration
  // (e.g. dumping per-address traffic) is deterministic by construction.
  std::map<Address, Handler> handlers_;
  std::map<Address, TrafficCounters> counters_;
  FaultFilter fault_filter_;
  CapacityLimits capacity_;
  /// Per-sender (window index, messages sent in it) — the windowed
  /// outbound budget. Only populated while capacity limits are set.
  std::map<Address, std::pair<std::int64_t, std::uint32_t>> send_windows_;
  /// Per-receiver in-flight inbound message count.
  std::map<Address, std::uint64_t> in_flight_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t fault_dropped_ = 0;
  std::uint64_t fault_delayed_ = 0;
  std::uint64_t fault_duplicated_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t queue_dropped_ = 0;
};

/// Builds a FaultFilter from any object exposing deliver/extra_latency/
/// duplicate (i.e. fault::FaultInjector) and a clock, without making
/// net depend on the fault library.
template <typename Injector, typename Clock>
FaultFilter make_fault_filter(Injector& injector, Clock clock) {
  return [&injector, clock](Address from, Address to) {
    const double now = clock();
    FaultDecision fate;
    fate.drop = !injector.deliver(from, to, now);
    if (!fate.drop) {
      fate.extra_delay = injector.extra_latency(now);
      fate.duplicate = injector.duplicate(now);
    }
    return fate;
  };
}

}  // namespace lagover::net
