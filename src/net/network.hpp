// Simulated message-passing network on top of the discrete-event kernel.
// Messages are delivered asynchronously after a LatencyModel-determined
// delay; per-address traffic counters feed the load experiments
// (the RSS "bandwidth overload problem" is ultimately a message-count
// argument).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/latency_model.hpp"
#include "sim/simulator.hpp"

namespace lagover::net {

struct TrafficCounters {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

/// Typed network: Message is any copyable payload type. Undeliverable
/// messages (no registered handler at arrival time) are dropped and
/// counted, modelling crashes mid-flight.
template <typename Message>
class Network {
 public:
  using Handler = std::function<void(Address from, const Message&)>;

  Network(Simulator& sim, std::unique_ptr<LatencyModel> latency,
          std::uint64_t seed)
      : sim_(sim), latency_(std::move(latency)), rng_(seed) {
    LAGOVER_EXPECTS(latency_ != nullptr);
  }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers (or replaces) the message handler for an address.
  void register_node(Address address, Handler handler) {
    LAGOVER_EXPECTS(handler != nullptr);
    handlers_[address] = std::move(handler);
  }

  /// Removes the handler; in-flight messages to it will be dropped.
  void deregister_node(Address address) { handlers_.erase(address); }

  bool registered(Address address) const {
    return handlers_.count(address) != 0;
  }

  /// Sends a message; delivery is scheduled after the model latency.
  /// `size_bytes` is accounting-only (0 = count messages, not bytes).
  void send(Address from, Address to, Message message,
            std::size_t size_bytes = 0) {
    auto& sent = counters_[from];
    ++sent.messages_sent;
    sent.bytes_sent += size_bytes;
    ++total_messages_;
    const double delay = latency_->latency(from, to, rng_);
    sim_.schedule_after(
        delay, [this, from, to, message = std::move(message), size_bytes] {
          const auto it = handlers_.find(to);
          if (it == handlers_.end()) {
            ++dropped_;
            return;
          }
          auto& received = counters_[to];
          ++received.messages_received;
          received.bytes_received += size_bytes;
          it->second(from, message);
        });
  }

  const TrafficCounters& counters(Address address) const {
    static const TrafficCounters kEmpty{};
    const auto it = counters_.find(address);
    return it == counters_.end() ? kEmpty : it->second;
  }

  std::uint64_t total_messages() const noexcept { return total_messages_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  Simulator& simulator() noexcept { return sim_; }

 private:
  Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  std::unordered_map<Address, Handler> handlers_;
  std::unordered_map<Address, TrafficCounters> counters_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace lagover::net
