#!/usr/bin/env python3
"""LagOver determinism lint.

The reproduction's headline guarantee is seed-stable, byte-identical
simulation output. That only holds if the code never consults ambient
entropy and never lets hash-table iteration order leak into
RNG-consuming loops. This checker enforces the repo-specific rules that
keep the guarantee true (see docs/STATIC_ANALYSIS.md):

  rand-time       no std::rand / std::random_device / time() /
                  std::chrono::system_clock outside src/common/rng.hpp
                  and src/telemetry/ (wall-clock profiling is the one
                  legitimate consumer).
  unordered-iter  no std::unordered_map / std::unordered_set in the
                  determinism-critical directories (src/core, src/sim,
                  src/net, src/health, src/feed, src/fault,
                  src/workload): iteration order is
                  implementation-defined, and an iterated hash table
                  feeding an RNG-consuming loop silently breaks seed
                  stability across platforms and libstdc++ versions.
  float-delay     no `float` in src/: Delay/round arithmetic is exact
                  integer (or double for sim time); single-precision
                  intermediate rounding is platform/FPU sensitive.
  const-bracket   no map operator[] on map-typed members inside
                  const-intent (const-qualified) member functions;
                  operator[] inserts, so these only compile against a
                  non-const alias and then mutate state behind a reader
                  API.

Concurrency-readiness rules (see docs/STATIC_ANALYSIS.md, "Concurrency
readiness"). These enforce the LAGOVER_THREAD_SAFE /
LAGOVER_THREAD_HOSTILE contract from common/thread_annotations.hpp —
the lint collects marked type names in a pre-pass over the scanned
tree, then checks:

  mutable-global    no non-const static data at namespace or function
                    scope unless it is const/constexpr/thread_local, a
                    std::atomic, a sync primitive, or a type marked
                    LAGOVER_THREAD_SAFE. (Class-body static members are
                    out of scope; statics of HOSTILE types are owned by
                    hostile-escape.)
  unannotated-mutex a mutex member whose name never appears in a
                    LAGOVER_GUARDED_BY / _REQUIRES / _ACQUIRE /
                    _EXCLUDES annotation inside its class: a lock that
                    provably guards nothing the clang analysis can see.
  hostile-escape    a LAGOVER_THREAD_HOSTILE type placed in static
                    storage outside src/telemetry/, or mentioned at all
                    inside src/parallel/ (the future multi-threaded
                    round engine).
  raw-thread        std::thread / std::jthread / pthread_create /
                    no-arg .detach() outside src/parallel/ and tests/.

Suppression is ONLY possible through scripts/lint_allowlist.txt, and
every entry must carry a justification; stale entries (matching no
current finding) fail the run so the allowlist cannot rot.

Engines: with python3-clang + a compile_commands.json the
unordered-iter rule upgrades from "container named in a critical dir"
to "container actually iterated" (range-for / begin() walks) using the
AST; everything else (and every rule when libclang is absent) runs on a
comment- and string-stripped token scan. Use --engine to force one.

Exit codes: 0 clean, 1 findings or allowlist problems, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

REPO_MARKERS = ("CMakeLists.txt", "ROADMAP.md")
SOURCE_EXTENSIONS = (".hpp", ".cpp", ".h", ".cc")

# Directories whose iteration order feeds RNG-consuming loops.
DETERMINISM_DIRS = (
    "src/core",
    "src/sim",
    "src/net",
    "src/health",
    "src/feed",
    "src/fault",
    "src/workload",
)

# The only places allowed to touch ambient entropy / wall clocks.
ENTROPY_EXEMPT = ("src/common/rng.hpp", "src/telemetry/")

RULES = {
    "rand-time": "ambient entropy or wall clock outside common/rng and "
                 "telemetry/ breaks seed-stable replay",
    "unordered-iter": "unordered container in a determinism-critical "
                      "directory; iteration order is implementation-"
                      "defined and can feed RNG-consuming loops",
    "float-delay": "single-precision float in Delay/round arithmetic is "
                   "platform sensitive; use integer Delay or double",
    "const-bracket": "map operator[] inserts; in a const-intent path use "
                     "find()/at() instead",
    "mutable-global": "non-const static data is shared mutable state; "
                      "make it const/constexpr, a std::atomic, or a "
                      "LAGOVER_THREAD_SAFE type",
    "unannotated-mutex": "mutex member never named in a LAGOVER_GUARDED_BY"
                         "/_REQUIRES/_ACQUIRE/_EXCLUDES annotation; the "
                         "thread-safety analysis cannot see what it "
                         "guards — use lagover::Mutex and annotate",
    "hostile-escape": "LAGOVER_THREAD_HOSTILE type escaping its single-"
                      "thread confinement (static storage outside "
                      "src/telemetry/, or any use in src/parallel/)",
    "raw-thread": "direct thread spawn/detach outside src/parallel/ and "
                  "tests/; threaded code belongs behind the annotated "
                  "parallel layer",
}


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path  # repo-relative, forward slashes
        self.line = line
        self.message = message
        self.allowed_by = None  # index into the allowlist once matched

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure so finding line numbers stay accurate."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i > 1 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_source_files(root, subdirs):
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        if not os.path.isdir(base):
            continue
        for dirpath, _, files in os.walk(base):
            for name in sorted(files):
                if name.endswith(SOURCE_EXTENSIONS):
                    yield os.path.join(dirpath, name)


def rel(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


# --- rule implementations (token engine) -------------------------------

RAND_TIME_PATTERNS = [
    (re.compile(r"std\s*::\s*rand\b"), "std::rand"),
    (re.compile(r"(?<![\w:])srand\s*\("), "srand()"),
    (re.compile(r"(?<![\w:])rand\s*\(\s*\)"), "rand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w.:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time()"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday()"),
]


def check_rand_time(root, path, stripped):
    relpath = rel(root, path)
    if any(relpath.startswith(prefix) or relpath == prefix.rstrip("/")
           for prefix in ENTROPY_EXEMPT):
        return []
    findings = []
    for pattern, label in RAND_TIME_PATTERNS:
        for match in pattern.finditer(stripped):
            findings.append(Finding(
                "rand-time", relpath, line_of(stripped, match.start()),
                f"{label}: {RULES['rand-time']}"))
    return findings


UNORDERED_PATTERN = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\b")


def check_unordered(root, path, stripped):
    relpath = rel(root, path)
    if not any(relpath.startswith(d + "/") for d in DETERMINISM_DIRS):
        return []
    findings = []
    for match in UNORDERED_PATTERN.finditer(stripped):
        findings.append(Finding(
            "unordered-iter", relpath, line_of(stripped, match.start()),
            f"{match.group(0)}: {RULES['unordered-iter']}"))
    return findings


FLOAT_PATTERN = re.compile(r"(?<![\w])float(?![\w])")


def check_float(root, path, stripped):
    relpath = rel(root, path)
    if not relpath.startswith("src/"):
        return []
    findings = []
    for match in FLOAT_PATTERN.finditer(stripped):
        findings.append(Finding(
            "float-delay", relpath, line_of(stripped, match.start()),
            RULES["float-delay"]))
    return findings


MAP_MEMBER_PATTERN = re.compile(
    r"\bstd\s*::\s*(?:unordered_)?map\s*<[^;{}]*?>\s+(\w+_)\s*(?:=[^;]*)?;")
CONST_METHOD_PATTERN = re.compile(
    r"\)\s*const\s*(?:noexcept\s*)?(?:override\s*)?\{")


def check_const_bracket(root, path, stripped):
    relpath = rel(root, path)
    if not relpath.startswith("src/"):
        return []
    members = set(MAP_MEMBER_PATTERN.findall(stripped))
    if not members:
        return []
    findings = []
    for method in CONST_METHOD_PATTERN.finditer(stripped):
        # Walk the const method body by brace balance.
        depth = 0
        i = method.end() - 1
        end = i
        while end < len(stripped):
            if stripped[end] == "{":
                depth += 1
            elif stripped[end] == "}":
                depth -= 1
                if depth == 0:
                    break
            end += 1
        body = stripped[i:end]
        for member in members:
            for use in re.finditer(re.escape(member) + r"\s*\[", body):
                findings.append(Finding(
                    "const-bracket", relpath,
                    line_of(stripped, i + use.start()),
                    f"{member}[...] in a const member function: "
                    f"{RULES['const-bracket']}"))
    return findings


TOKEN_CHECKS = (check_rand_time, check_unordered, check_float,
                check_const_bracket)


# --- concurrency-readiness rules (token engine) -------------------------
#
# These rules consult the LAGOVER_THREAD_SAFE / LAGOVER_THREAD_HOSTILE
# markers from common/thread_annotations.hpp, collected in a pre-pass
# over the whole scanned tree (collect_markers) so a type declared in
# one header is recognised at every use site.

MARKER_PATTERN = re.compile(
    r"\b(?:class|struct)\s+LAGOVER_THREAD_(HOSTILE|SAFE)\s+(\w+)")

# Synchronisation primitives are internally safe to place in static
# storage; treat them like LAGOVER_THREAD_SAFE types.
SYNC_PRIMITIVE_TYPES = frozenset({
    "Mutex", "MutexLock", "mutex", "shared_mutex", "recursive_mutex",
    "timed_mutex", "once_flag", "condition_variable",
})


def collect_markers(root, dirs):
    """Returns (hostile_types, safe_types): type names marked
    LAGOVER_THREAD_HOSTILE / LAGOVER_THREAD_SAFE anywhere in the tree."""
    hostile, safe = set(), set()
    for path in iter_source_files(root, dirs):
        with open(path, encoding="utf-8") as handle:
            stripped = strip_comments_and_strings(handle.read())
        for kind, name in MARKER_PATTERN.findall(stripped):
            (hostile if kind == "HOSTILE" else safe).add(name)
    return hostile, safe


CLASS_SPAN_PATTERN = re.compile(r"\b(class|struct|union|enum)\b[^;{}()]*\{")


def class_spans(stripped):
    """Brace-matched (start, end, match) spans of every class/struct/
    union/enum body. Nested types yield overlapping spans."""
    spans = []
    for match in CLASS_SPAN_PATTERN.finditer(stripped):
        depth = 0
        i = match.end() - 1
        while i < len(stripped):
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        spans.append((match.start(), i + 1, match))
    return spans


STATIC_TOKEN = re.compile(r"\bstatic\b")


def iter_static_data_decls(stripped, skip_spans=()):
    """Yields (offset, head) for each `static` token that begins a data
    declaration (not a function declaration/definition). `head` is the
    declaration text up to the initializer brace or terminating
    semicolon — enough to classify the declared type."""
    for match in STATIC_TOKEN.finditer(stripped):
        if any(s < match.start() < e for s, e in skip_spans):
            continue
        semi = stripped.find(";", match.end())
        brace = stripped.find("{", match.end())
        if semi == -1:
            continue
        if brace != -1 and brace < semi:
            head = stripped[match.start():brace]
            # `static T x{...};` is a data decl; a `(` before the brace
            # means a function definition body.
            if "(" in head:
                continue
        else:
            head = stripped[match.start():semi]
            if "(" in head:
                eq = head.find("=")
                # Parens without a preceding `=` make this a function
                # declaration (or ctor-paren init, which this repo's
                # style avoids in favour of braces).
                if eq == -1 or head.find("(") < eq:
                    continue
        yield match.start(), head


MUTABLE_GLOBAL_EXEMPT = re.compile(
    r"\b(?:const|constexpr|constinit|thread_local)\b|\batomic\b")


def check_mutable_global(root, path, stripped, markers):
    """Non-const static data at namespace or function scope. Class-body
    static members are out of scope (per docs/STATIC_ANALYSIS.md), and
    statics of HOSTILE-marked types are reported by hostile-escape
    instead, so each site gets exactly one finding."""
    relpath = rel(root, path)
    hostile, safe = markers
    spans = [(s, e) for s, e, _ in class_spans(stripped)]
    findings = []
    for offset, head in iter_static_data_decls(stripped, spans):
        if MUTABLE_GLOBAL_EXEMPT.search(head):
            continue
        names = set(re.findall(r"\w+", head))
        if names & safe or names & SYNC_PRIMITIVE_TYPES:
            continue
        if names & hostile:
            continue  # hostile-escape owns hostile-type statics
        findings.append(Finding(
            "mutable-global", relpath, line_of(stripped, offset),
            RULES["mutable-global"]))
    return findings


MUTEX_MEMBER_PATTERN = re.compile(
    r"(?:\bmutable\s+)?(?:(?:std|lagover)\s*::\s*)?"
    r"\b(?:mutex|shared_mutex|recursive_mutex|timed_mutex|Mutex)\s+"
    r"(\w+)\s*(?:;|\{\s*\}\s*;)")
ANNOTATION_MACROS = (
    "LAGOVER_GUARDED_BY", "LAGOVER_PT_GUARDED_BY", "LAGOVER_REQUIRES",
    "LAGOVER_ACQUIRE", "LAGOVER_RELEASE", "LAGOVER_TRY_ACQUIRE",
    "LAGOVER_EXCLUDES", "LAGOVER_RETURN_CAPABILITY",
)


def check_unannotated_mutex(root, path, stripped, markers):
    """A mutex member whose name never appears inside a thread-safety
    annotation in its class guards nothing the analysis can see."""
    del markers
    relpath = rel(root, path)
    if relpath == "src/common/mutex.hpp":
        return []  # the annotated wrapper around std::mutex itself
    findings = []
    seen = set()
    for start, end, match in class_spans(stripped):
        if match.group(1) not in ("class", "struct"):
            continue
        body = stripped[start:end]
        for member in MUTEX_MEMBER_PATTERN.finditer(body):
            name = member.group(1)
            line = line_of(stripped, start + member.start())
            if (name, line) in seen:
                continue  # nested class spans overlap their parents
            seen.add((name, line))
            annotated = re.search(
                r"(?:%s)\s*\(\s*%s\s*[,)]" % (
                    "|".join(ANNOTATION_MACROS), re.escape(name)), body)
            if not annotated:
                findings.append(Finding(
                    "unannotated-mutex", relpath, line,
                    f"{name}: {RULES['unannotated-mutex']}"))
    return findings


def check_hostile_escape(root, path, stripped, markers):
    """LAGOVER_THREAD_HOSTILE types are single-thread confined: no
    static storage outside src/telemetry/, and no mention at all in
    src/parallel/ (reserved for genuinely multi-threaded code)."""
    hostile, _ = markers
    if not hostile:
        return []
    relpath = rel(root, path)
    name_pattern = re.compile(
        r"\b(?:%s)\b" % "|".join(sorted(re.escape(n) for n in hostile)))
    findings = []
    if relpath.startswith("src/parallel/"):
        for match in name_pattern.finditer(stripped):
            findings.append(Finding(
                "hostile-escape", relpath, line_of(stripped, match.start()),
                f"{match.group(0)}: {RULES['hostile-escape']}"))
        return findings
    if relpath.startswith("src/telemetry/"):
        return []
    # Static members of hostile types escape too, so class bodies are
    # NOT skipped here (unlike mutable-global).
    for offset, head in iter_static_data_decls(stripped):
        match = name_pattern.search(head)
        if match:
            findings.append(Finding(
                "hostile-escape", relpath, line_of(stripped, offset),
                f"static {match.group(0)}: {RULES['hostile-escape']}"))
    return findings


RAW_THREAD_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*j?thread\b"), "std::thread"),
    (re.compile(r"\bpthread_create\b"), "pthread_create"),
    (re.compile(r"\.\s*detach\s*\(\s*\)"), ".detach()"),
]


def check_raw_thread(root, path, stripped, markers):
    """Raw thread spawns outside the sanctioned homes: tests/ (which
    exercise the thread-safe telemetry core directly) and src/parallel/
    (the annotated threaded layer)."""
    del markers
    relpath = rel(root, path)
    if relpath.startswith(("tests/", "src/parallel/")):
        return []
    findings = []
    for pattern, label in RAW_THREAD_PATTERNS:
        for match in pattern.finditer(stripped):
            findings.append(Finding(
                "raw-thread", relpath, line_of(stripped, match.start()),
                f"{label}: {RULES['raw-thread']}"))
    return findings


CONCURRENCY_CHECKS = (check_mutable_global, check_unannotated_mutex,
                      check_hostile_escape, check_raw_thread)


# --- libclang engine (optional upgrade for unordered-iter) --------------

def libclang_available():
    try:
        import clang.cindex  # noqa: F401
        return True
    except ImportError:
        return False


def check_unordered_libclang(root, path, compile_commands_dir):
    """AST-accurate variant of unordered-iter: flags range-for loops and
    begin()/end() walks whose range is an unordered container, instead
    of any mention. Returns None when the TU cannot be parsed (caller
    falls back to the token rule)."""
    import clang.cindex as ci
    relpath = rel(root, path)
    if not any(relpath.startswith(d + "/") for d in DETERMINISM_DIRS):
        return []
    try:
        db = ci.CompilationDatabase.fromDirectory(compile_commands_dir)
        commands = db.getCompileCommands(path)
        args = []
        if commands:
            # Drop the compiler argv0 and the source file itself.
            args = [a for a in list(commands[0].arguments)[1:-1]
                    if a not in ("-c", "-o")]
        index = ci.Index.create()
        tu = index.parse(path, args=args)
    except ci.TranslationUnitLoadError:
        return None
    findings = []

    def is_unordered(ctype):
        return "unordered_" in ctype.get_canonical().spelling

    def visit(cursor):
        if cursor.location.file and cursor.location.file.name != path:
            return
        if cursor.kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
            children = list(cursor.get_children())
            if len(children) >= 2 and is_unordered(children[-2].type):
                findings.append(Finding(
                    "unordered-iter", relpath, cursor.location.line,
                    "range-for over an unordered container: "
                    + RULES["unordered-iter"]))
        if cursor.kind == ci.CursorKind.CALL_EXPR and \
                cursor.spelling in ("begin", "cbegin"):
            children = list(cursor.get_children())
            if children and is_unordered(children[0].type):
                findings.append(Finding(
                    "unordered-iter", relpath, cursor.location.line,
                    "iterator walk over an unordered container: "
                    + RULES["unordered-iter"]))
        for child in cursor.get_children():
            visit(child)

    visit(tu.cursor)
    return findings


# --- allowlist ---------------------------------------------------------

class AllowEntry:
    def __init__(self, rule, path, justification, line):
        self.rule = rule
        self.path = path
        self.justification = justification
        self.line = line
        self.used = False


def load_allowlist(path):
    """Parses `rule | path-prefix | justification` lines; '#' comments.
    Returns (entries, errors)."""
    entries, errors = [], []
    if not os.path.exists(path):
        return entries, errors
    with open(path, encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = [p.strip() for p in line.split("|")]
            if len(parts) != 3 or not all(parts):
                errors.append(
                    f"{path}:{lineno}: malformed allowlist entry (need "
                    f"'rule | path | justification'): {line}")
                continue
            rule, target, justification = parts
            if rule not in RULES:
                errors.append(
                    f"{path}:{lineno}: unknown rule '{rule}'")
                continue
            if len(justification) < 10:
                errors.append(
                    f"{path}:{lineno}: justification too short to "
                    f"explain anything: '{justification}'")
                continue
            entries.append(AllowEntry(rule, target, justification, lineno))
    return entries, errors


def apply_allowlist(findings, entries):
    remaining = []
    for finding in findings:
        suppressed = False
        for entry in entries:
            if entry.rule == finding.rule and \
                    finding.path.startswith(entry.path):
                entry.used = True
                suppressed = True
                break
        if not suppressed:
            remaining.append(finding)
    return remaining


# --- driver ------------------------------------------------------------

DEFAULT_DIRS = ("src", "bench", "tests", "examples")


def run_lint(root, engine, compile_commands, verbose=False,
             dirs=DEFAULT_DIRS):
    findings = []
    libclang = engine == "libclang" or (
        engine == "auto" and libclang_available() and compile_commands
        and os.path.exists(compile_commands))
    if engine == "libclang" and not libclang_available():
        print("error: --engine libclang requested but python3-clang "
              "is not importable", file=sys.stderr)
        return None, None
    # Pre-pass: the concurrency rules need the THREAD_SAFE/HOSTILE
    # marker sets from the whole tree before any per-file scan.
    markers = collect_markers(root, dirs)
    scanned = 0
    for path in iter_source_files(root, dirs):
        with open(path, encoding="utf-8") as handle:
            stripped = strip_comments_and_strings(handle.read())
        scanned += 1
        for check in TOKEN_CHECKS:
            if check is check_unordered and libclang:
                ast = check_unordered_libclang(
                    root, path, os.path.dirname(compile_commands))
                findings.extend(ast if ast is not None
                                else check(root, path, stripped))
            else:
                findings.extend(check(root, path, stripped))
        for check in CONCURRENCY_CHECKS:
            findings.extend(check(root, path, stripped, markers))
    if verbose:
        mode = "libclang" if libclang else "token"
        print(f"scanned {scanned} files ({mode} engine for "
              f"unordered-iter; {len(markers[1])} THREAD_SAFE / "
              f"{len(markers[0])} THREAD_HOSTILE marked types)")
    return findings, scanned


def self_test(root):
    """Injects one synthetic violation per rule into a scratch tree and
    asserts the checker catches each one — proof the rules actually
    fire, run in CI on every push."""
    samples = {
        "rand-time": "#include <cstdlib>\nint f() { return std::rand(); }\n",
        "unordered-iter": "#include <unordered_map>\n"
                          "std::unordered_map<int, int> m;\n",
        "float-delay": "float shrink(int delay) "
                       "{ return (float)delay; }\n",
        "const-bracket":
            "#include <map>\n"
            "struct S {\n"
            "  int get(int k) const { return table_[k]; }\n"
            "  mutable std::map<int, int> table_;\n"
            "};\n",
        "mutable-global":
            "inline int& call_count() {\n"
            "  static int calls = 0;\n"
            "  return calls;\n"
            "}\n",
        "unannotated-mutex":
            "#include <mutex>\n"
            "class Queue {\n"
            "  std::mutex mutex_;\n"
            "  int depth_ = 0;\n"
            "};\n",
        "hostile-escape":
            "class LAGOVER_THREAD_HOSTILE Widget { int x_ = 0; };\n"
            "inline Widget& widget() {\n"
            "  static Widget w;\n"
            "  return w;\n"
            "}\n",
        "raw-thread":
            "#include <thread>\n"
            "inline void spawn() {\n"
            "  std::thread worker([] {});\n"
            "  worker.detach();\n"
            "}\n",
    }
    destinations = {
        "rand-time": "src/core/injected_rand.hpp",
        "unordered-iter": "src/sim/injected_unordered.hpp",
        "float-delay": "src/core/injected_float.hpp",
        "const-bracket": "src/net/injected_bracket.hpp",
        "mutable-global": "src/core/injected_global.hpp",
        "unannotated-mutex": "src/core/injected_mutex.hpp",
        "hostile-escape": "src/core/injected_hostile.hpp",
        "raw-thread": "src/core/injected_thread.hpp",
    }
    # Files that must produce NO finding: each exercises an exemption
    # that, if broken, would bury the tree in false positives.
    negatives = {
        "src/net/injected_const_static.hpp":
            "const-static data (like net/network.hpp's TrafficCounters "
            "kEmpty) is immutable, not shared mutable state",
        "src/core/injected_atomic_static.hpp":
            "static std::atomic is the sanctioned lock-free form",
        "src/core/injected_safe_static.hpp":
            "statics of LAGOVER_THREAD_SAFE types are internally "
            "synchronized",
        "src/telemetry/injected_hostile_local.hpp":
            "hostile statics are permitted inside src/telemetry/",
        "tests/injected_test_thread.cpp":
            "tests/ may spawn raw threads to exercise the telemetry core",
        "src/parallel/injected_parallel_thread.cpp":
            "src/parallel/ is the sanctioned home for threaded code",
        "src/core/injected_annotated_mutex.hpp":
            "a mutex named by LAGOVER_GUARDED_BY is annotated",
    }
    negative_samples = {
        "src/net/injected_const_static.hpp":
            "struct TrafficCounters { long sent = 0; };\n"
            "static const TrafficCounters kEmpty{};\n",
        "src/core/injected_atomic_static.hpp":
            "#include <atomic>\n"
            "static std::atomic<int> g_admitted{0};\n",
        "src/core/injected_safe_static.hpp":
            "class LAGOVER_THREAD_SAFE Registry { int v_ = 0; };\n"
            "inline Registry& instance() {\n"
            "  static Registry r;\n"
            "  return r;\n"
            "}\n",
        "src/telemetry/injected_hostile_local.hpp":
            "class LAGOVER_THREAD_HOSTILE Scratch { int v_ = 0; };\n"
            "inline Scratch& scratch() {\n"
            "  static Scratch s;\n"
            "  return s;\n"
            "}\n",
        "tests/injected_test_thread.cpp":
            "#include <thread>\n"
            "void hammer() { std::thread t([] {}); t.join(); }\n",
        "src/parallel/injected_parallel_thread.cpp":
            "#include <thread>\n"
            "void fan_out() { std::thread t([] {}); t.join(); }\n",
        "src/core/injected_annotated_mutex.hpp":
            "class Guarded {\n"
            "  mutable Mutex mutex_;\n"
            "  int value_ LAGOVER_GUARDED_BY(mutex_) = 0;\n"
            "};\n",
    }
    failures = []
    with tempfile.TemporaryDirectory(prefix="lagover_lint_") as scratch:
        for rule, relpath in destinations.items():
            target = os.path.join(scratch, relpath)
            os.makedirs(os.path.dirname(target), exist_ok=True)
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(samples[rule])
        findings, _ = run_lint(scratch, "token", None)
        fired = {f.rule for f in findings}
        for rule in RULES:
            if rule in fired:
                print(f"self-test: rule {rule:17s} fires  ... ok")
            else:
                failures.append(rule)
                print(f"self-test: rule {rule:17s} MISSED its synthetic "
                      f"violation")
        # hostile-escape must also fire on a mere *mention* inside
        # src/parallel/ — that path is checked separately from statics.
        parallel = os.path.join(scratch,
                                "src/parallel/injected_mention.cpp")
        os.makedirs(os.path.dirname(parallel), exist_ok=True)
        with open(parallel, "w", encoding="utf-8") as handle:
            handle.write("class Widget;\nWidget* borrowed = nullptr;\n")
        findings, _ = run_lint(scratch, "token", None)
        if any(f.rule == "hostile-escape" and
               f.path == "src/parallel/injected_mention.cpp"
               for f in findings):
            print("self-test: hostile-escape fires in src/parallel/ "
                  "... ok")
        else:
            failures.append("hostile-escape-parallel")
            print("self-test: hostile-escape MISSED a hostile mention "
                  "in src/parallel/")
        os.remove(parallel)
        # The exemptions must hold too, starting with entropy use
        # inside telemetry/.
        exempt = os.path.join(scratch, "src/telemetry/wall.hpp")
        os.makedirs(os.path.dirname(exempt), exist_ok=True)
        with open(exempt, "w", encoding="utf-8") as handle:
            handle.write("#include <chrono>\n"
                         "using clock_t2 = std::chrono::system_clock;\n")
        findings, _ = run_lint(scratch, "token", None)
        if any(f.path.startswith("src/telemetry/") for f in findings):
            failures.append("telemetry-exemption")
            print("self-test: telemetry/ exemption BROKEN (false "
                  "positive)")
        else:
            print("self-test: telemetry/ exemption holds ... ok")
        for relpath, why in negatives.items():
            target = os.path.join(scratch, relpath)
            os.makedirs(os.path.dirname(target), exist_ok=True)
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(negative_samples[relpath])
        findings, _ = run_lint(scratch, "token", None)
        by_path = {}
        for finding in findings:
            by_path.setdefault(finding.path, []).append(finding)
        for relpath, why in negatives.items():
            hits = by_path.get(relpath, [])
            if hits:
                failures.append(f"negative:{relpath}")
                print(f"self-test: exemption BROKEN ({why}): "
                      f"{hits[0]}")
            else:
                short = relpath.rsplit("/", 1)[-1]
                print(f"self-test: exemption holds for {short} ... ok")
    if failures:
        print(f"self-test FAILED: {', '.join(failures)}")
        return 1
    print("self-test passed: every rule detects its synthetic violation")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="LagOver determinism lint "
                    "(see docs/STATIC_ANALYSIS.md)")
    parser.add_argument("--repo", default=None,
                        help="repository root (default: auto-detect "
                             "upward from this script)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for the libclang "
                             "engine (default: <repo>/build/"
                             "compile_commands.json)")
    parser.add_argument("--engine", choices=("auto", "token", "libclang"),
                        default="auto")
    parser.add_argument("--allowlist", default=None,
                        help="override the allowlist path")
    parser.add_argument("--dirs", default=",".join(DEFAULT_DIRS),
                        help="comma-separated top-level directories to "
                             "scan (default: %(default)s)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on a synthetic "
                             "violation, then exit")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule:15s} {description}")
        return 0

    root = args.repo
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if not all(os.path.exists(os.path.join(root, m))
               for m in REPO_MARKERS):
        print(f"error: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(root)

    compile_commands = args.compile_commands or os.path.join(
        root, "build", "compile_commands.json")
    dirs = tuple(d.strip() for d in args.dirs.split(",") if d.strip())
    if not dirs:
        print("error: --dirs needs at least one directory",
              file=sys.stderr)
        return 2
    findings, _ = run_lint(root, args.engine, compile_commands,
                           args.verbose, dirs)
    if findings is None:
        return 2

    allowlist_path = args.allowlist or os.path.join(
        root, "scripts", "lint_allowlist.txt")
    entries, allow_errors = load_allowlist(allowlist_path)
    findings = apply_allowlist(findings, entries)

    status = 0
    for finding in sorted(findings, key=lambda f: (f.path, f.line)):
        print(finding)
        status = 1
    for error in allow_errors:
        print(error)
        status = 1
    for entry in entries:
        if not entry.used:
            print(f"{allowlist_path}:{entry.line}: stale allowlist entry "
                  f"(matches no current finding): {entry.rule} | "
                  f"{entry.path}")
            status = 1
    if status == 0:
        print("lagover_lint: clean")
    else:
        print(f"lagover_lint: {len(findings)} finding(s); suppress only "
              f"via {os.path.relpath(allowlist_path, root)} with a "
              f"justification")
    return status


if __name__ == "__main__":
    sys.exit(main())
