#!/usr/bin/env python3
"""Validate bench output files.

Autodetects the kind of each file passed on the command line:

  * "lagover.bench.v1"   — a bench summary (optionally embedding a
    "metrics" block with schema "lagover.metrics.v1" and/or a "perf"
    block with schema "lagover.perf.v1"),
  * "lagover.perf.trajectory.v1" — a merged perf trajectory, as
    written by scripts/perf_compare.py --collect,
  * "lagover.scenario.v1" — a declarative scenario document, as run by
    bench_scenario (strict keys, mirroring src/workload/scenario.cpp),
  * "lagover.postmortem.v1" — a flight-recorder dump, as written by
    --postmortem-out on an invariant violation (optionally retaining a
    "health" ring of "lagover.health.v1" sample lines),
  * a Chrome trace_event file — top-level "traceEvents" list, as
    written by --trace-out (Perfetto / chrome://tracing loadable),
  * a JSONL event/span stream — one JSON object per line, as written
    by --events-out / --spans-out ("lagover.spans.v1" span lines) or
    --health-out ("lagover.health.v1" run/sample/run_end lines).

Exits non-zero with a per-file report on any violation, so CI can gate
on the schemas without golden files.
"""

import json
import sys

NUMERIC = (int, float)


def fail(path, message):
    raise ValueError(f"{path}: {message}")


def check_metrics_block(path, metrics):
    if metrics.get("schema") != "lagover.metrics.v1":
        fail(path, f"metrics schema is {metrics.get('schema')!r}, "
                   "expected 'lagover.metrics.v1'")
    for section in ("counters", "gauges", "histograms", "profile"):
        if section not in metrics:
            fail(path, f"metrics block missing '{section}'")
    for name, value in metrics["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(path, f"counter {name!r} is not a non-negative integer")
    for name, value in metrics["gauges"].items():
        if not isinstance(value, NUMERIC):
            fail(path, f"gauge {name!r} is not numeric")
    for name, hist in metrics["histograms"].items():
        for key in ("count", "sum", "min", "max", "mean",
                    "p50", "p90", "p99", "underflow", "overflow"):
            if key not in hist:
                fail(path, f"histogram {name!r} missing '{key}'")
        if hist["count"] > 0 and not (hist["min"] <= hist["p50"] <= hist["max"]):
            fail(path, f"histogram {name!r}: p50 outside [min, max]")
        for bucket in hist.get("buckets", []):
            if not (bucket["lo"] < bucket["hi"] and bucket["count"] > 0):
                fail(path, f"histogram {name!r}: malformed bucket {bucket}")
    for name, site in metrics["profile"].items():
        for key in ("calls", "total_ns", "mean_ns", "max_ns"):
            if key not in site:
                fail(path, f"profile site {name!r} missing '{key}'")
    for name, series in metrics.get("timeseries", {}).items():
        times = [point[0] for point in series]
        if times != sorted(times):
            fail(path, f"timeseries {name!r} is not time-sorted")


def check_perf_block(path, perf):
    if perf.get("schema") != "lagover.perf.v1":
        fail(path, f"perf schema is {perf.get('schema')!r}, "
                   "expected 'lagover.perf.v1'")
    for key in ("wall_time_s", "peak_rss_kb", "rounds", "rounds_per_sec",
                "messages", "messages_per_round", "alloc", "phases",
                "scopes"):
        if key not in perf:
            fail(path, f"perf block missing '{key}'")
    for key in ("wall_time_s", "peak_rss_kb", "rounds", "rounds_per_sec",
                "messages", "messages_per_round"):
        value = perf[key]
        if not isinstance(value, NUMERIC) or value < 0:
            fail(path, f"perf {key!r} is not a non-negative number")
    for key in ("rounds", "messages", "peak_rss_kb"):
        if not isinstance(perf[key], int):
            fail(path, f"perf {key!r} is not an integer")
    alloc = perf["alloc"]
    if not isinstance(alloc.get("supported"), bool):
        fail(path, "perf alloc.supported is not a boolean")
    for key in ("count", "bytes", "frees"):
        if not isinstance(alloc.get(key), int) or alloc[key] < 0:
            fail(path, f"perf alloc.{key} is not a non-negative integer")
    if not alloc["supported"] and alloc["count"] != 0:
        fail(path, "perf alloc.count nonzero without the hook compiled in")
    # rounds_per_sec must be consistent with rounds / wall_time_s
    # (1% slack for the double round-trip through JSON).
    if perf["wall_time_s"] > 0 and perf["rounds"] > 0:
        implied = perf["rounds"] / perf["wall_time_s"]
        if abs(implied - perf["rounds_per_sec"]) > 0.01 * implied:
            fail(path, f"perf rounds_per_sec {perf['rounds_per_sec']:g} "
                       f"inconsistent with rounds/wall {implied:g}")
    if perf["rounds"] > 0:
        implied = perf["messages"] / perf["rounds"]
        if abs(implied - perf["messages_per_round"]) > \
                0.01 * max(implied, 1e-9):
            fail(path, "perf messages_per_round inconsistent with "
                       "messages/rounds")
    for name, phase in perf["phases"].items():
        for key in ("wall_s", "rounds", "rounds_per_sec", "messages",
                    "messages_per_round", "allocs", "alloc_bytes"):
            if key not in phase:
                fail(path, f"perf phase {name!r} missing '{key}'")
            if not isinstance(phase[key], NUMERIC) or phase[key] < 0:
                fail(path, f"perf phase {name!r}.{key} is not a "
                           "non-negative number")
        if phase["rounds"] > perf["rounds"]:
            fail(path, f"perf phase {name!r} has more rounds than the run")
    for name, times in perf.get("micro", {}).items():
        for key in ("real_ns", "cpu_ns"):
            if not isinstance(times.get(key), NUMERIC) or times[key] < 0:
                fail(path, f"perf micro {name!r}.{key} is not a "
                           "non-negative number")


HEALTH_SAMPLE_NESTED = {
    "depth": ("max", "mean", "p50", "p90", "p99"),
    "slack": ("min", "mean", "deepest", "violated"),
    "fanout": ("edges", "capacity", "saturated", "utilization"),
    "churn": ("attaches", "detaches", "offlines", "onlines"),
}


def check_health_sample(path, where, sample):
    for key in ("round", "online", "orphans", "satisfied", "unsatisfied",
                "converged"):
        if key not in sample:
            fail(path, f"{where}: health sample missing '{key}'")
    for outer, keys in HEALTH_SAMPLE_NESTED.items():
        block = sample.get(outer)
        if not isinstance(block, dict):
            fail(path, f"{where}: health sample missing '{outer}' object")
        for key in keys:
            if not isinstance(block.get(key), NUMERIC):
                fail(path, f"{where}: health sample {outer}.{key} is not "
                           "numeric")
    for key in ("online", "orphans", "satisfied", "unsatisfied"):
        if not isinstance(sample[key], int) or sample[key] < 0:
            fail(path, f"{where}: health sample {key!r} is not a "
                       "non-negative integer")
    if sample["satisfied"] + sample["unsatisfied"] != sample["online"]:
        fail(path, f"{where}: health satisfied + unsatisfied != online")
    if sample["orphans"] > sample["online"]:
        fail(path, f"{where}: health orphans exceed online consumers")
    if sample["converged"] != (sample["unsatisfied"] == 0):
        fail(path, f"{where}: health converged flag disagrees with "
                   "unsatisfied count")
    fanout = sample["fanout"]
    if fanout["capacity"] > 0:
        implied = fanout["edges"] / fanout["capacity"]
        if abs(implied - fanout["utilization"]) > 0.01 * max(implied, 1e-9):
            fail(path, f"{where}: health fanout.utilization inconsistent "
                       "with edges/capacity")
    depth = sample["depth"]
    if not depth["p50"] <= depth["p90"] <= depth["p99"] <= depth["max"]:
        fail(path, f"{where}: health depth percentiles are not ordered")
    for name, value in sample.get("messages", {}).items():
        if not isinstance(value, int) or value < 1:
            fail(path, f"{where}: health messages[{name!r}] is not a "
                       "positive integer")


def check_health_line(path, i, record):
    if record.get("schema") != "lagover.health.v1":
        fail(path, f"line {i}: health schema is {record.get('schema')!r}")
    kind = record["kind"]
    if not isinstance(record.get("run"), int) or record["run"] < 1:
        fail(path, f"line {i}: health {kind} run is not a positive integer")
    if kind == "run":
        for key in ("t", "nodes", "consumers", "stability_rounds"):
            if key not in record:
                fail(path, f"line {i}: health run header missing '{key}'")
    elif kind == "sample":
        check_health_sample(path, f"line {i}", record)
    elif kind == "run_end":
        for key in ("rounds", "converged", "convergence_round", "samples",
                    "stride"):
            if key not in record:
                fail(path, f"line {i}: health run_end missing '{key}'")
        if record["converged"] != (record["convergence_round"] >= 0):
            fail(path, f"line {i}: health run_end converged flag disagrees "
                       "with convergence_round")
        if "final" in record:
            check_health_sample(path, f"line {i} final", record["final"])


def check_health_block(path, health):
    if health.get("schema") != "lagover.health.v1":
        fail(path, f"health schema is {health.get('schema')!r}, "
                   "expected 'lagover.health.v1'")
    for key in ("stability_rounds", "runs", "converged_runs", "samples",
                "stream_lines"):
        if not isinstance(health.get(key), int) or health[key] < 0:
            fail(path, f"health block {key!r} is not a non-negative integer")
    if health["converged_runs"] > health["runs"]:
        fail(path, "health block converged_runs exceeds runs")
    if health["converged_runs"] > 0:
        stats = health.get("convergence_round")
        if not isinstance(stats, dict):
            fail(path, "health block with converged runs needs a "
                       "'convergence_round' object")
        for key in ("min", "median", "max"):
            if not isinstance(stats.get(key), NUMERIC):
                fail(path, f"health convergence_round.{key} is not numeric")
        if not stats["min"] <= stats["median"] <= stats["max"]:
            fail(path, "health convergence_round min/median/max not ordered")
    if "final" in health:
        check_health_sample(path, "health final", health["final"])


def check_perf_trajectory(path, doc):
    benches = doc.get("benches")
    if not isinstance(benches, dict) or not benches:
        fail(path, "trajectory needs a non-empty 'benches' object")
    for name, entry in benches.items():
        if "perf" not in entry:
            fail(path, f"trajectory bench {name!r} missing 'perf'")
        check_perf_block(path, entry["perf"])
    return f"perf trajectory ({len(benches)} benches)"


def check_bench(path, doc):
    if doc.get("schema") != "lagover.bench.v1":
        fail(path, f"schema is {doc.get('schema')!r}")
    for key in ("bench", "options", "summary", "tables"):
        if key not in doc:
            fail(path, f"missing top-level '{key}'")
    for key in ("peers", "trials", "max_rounds", "seed"):
        if key not in doc["options"]:
            fail(path, f"options missing '{key}'")
    for name, value in doc["summary"].items():
        if not isinstance(value, NUMERIC):
            fail(path, f"summary {name!r} is not numeric")
    for name, table in doc["tables"].items():
        if "header" not in table or "rows" not in table:
            fail(path, f"table {name!r} missing header/rows")
        width = len(table["header"])
        for row in table["rows"]:
            if len(row) != width:
                fail(path, f"table {name!r}: row width {len(row)} != "
                           f"header width {width}")
    if "metrics" in doc:
        check_metrics_block(path, doc["metrics"])
    if "perf" in doc:
        check_perf_block(path, doc["perf"])
    if "health" in doc:
        check_health_block(path, doc["health"])
    extras = [key for key in ("metrics", "perf", "health") if key in doc]
    return "bench json" + "".join(f" + {key}" for key in extras)


# --- lagover.scenario.v1 -------------------------------------------------
# Mirrors the strict C++ parser in src/workload/scenario.cpp: unknown keys
# are rejected per section, fractions live in [0, 1], windows are ordered.

SCENARIO_KEYS = ("schema", "name", "engine", "algorithm", "oracle", "seed",
                 "trials", "horizon", "workload", "churn", "faults",
                 "domains", "adversary", "defense", "overload", "feed")
SCENARIO_WORKLOAD_KEYS = ("kind", "peers", "max_latency", "source_fanout",
                          "tf1_fanout", "rand_fanout_max")
SCENARIO_CHURN_KEYS = ("leave_probability", "rejoin_probability")
SCENARIO_FAULT_KEYS = ("start", "end", "drop_probability",
                       "delay_probability", "delay_amount",
                       "duplicate_probability", "oracle_outage",
                       "oracle_staleness", "crash_probability",
                       "crash_downtime", "partition_fraction")
SCENARIO_DOMAIN_KEYS = ("name", "fraction", "members", "windows")
SCENARIO_DOMAIN_WINDOW_KEYS = ("start", "end", "fault")
SCENARIO_ADVERSARY_KEYS = ("delay_liar_fraction", "fanout_liar_fraction",
                           "free_rider_fraction", "flapper_fraction",
                           "delay_understatement", "flap_period",
                           "flap_duty", "salt")
SCENARIO_ADVERSARY_FRACTIONS = ("delay_liar_fraction", "fanout_liar_fraction",
                                "free_rider_fraction", "flapper_fraction")
SCENARIO_DEFENSE_KEYS = ("enabled", "probation_threshold",
                         "quarantine_threshold", "blacklist_threshold",
                         "oracle_plausibility", "delay_verification",
                         "receipt_audit")
SCENARIO_FEED_KEYS = ("duration", "push_loss", "recovery", "recovery_period",
                      "publish_period")
SCENARIO_OVERLOAD_KEYS = ("admission", "capacity", "join_storm")
SCENARIO_ADMISSION_KEYS = ("rate_limit", "window", "retry_after",
                           "breaker_trip_windows", "breaker_cooldown",
                           "breaker_close_windows", "serve_stale")
SCENARIO_CAPACITY_KEYS = ("relay_budget", "queue_limit", "shedding",
                          "fanout_factor", "recovery_ticks", "starve_limit",
                          "squeezes")
SCENARIO_SQUEEZE_KEYS = ("start", "end", "factor")
SCENARIO_JOIN_STORM_KEYS = ("at", "fraction")
SCENARIO_ENGINES = ("async", "rounds")
SCENARIO_ALGORITHMS = ("greedy", "hybrid", "fanout_greedy")
SCENARIO_ORACLES = ("random", "random_capacity", "random_delay_capacity",
                    "random_delay")
SCENARIO_WORKLOADS = ("tf1", "rand", "bi_corr", "bi_uncorr")


def scenario_keys(path, section, obj, allowed):
    if not isinstance(obj, dict):
        fail(path, f"scenario {section} is not an object")
    for key in obj:
        if key not in allowed:
            fail(path, f"scenario {section} has unknown key {key!r}")


def scenario_fraction(path, section, obj, key):
    if key in obj:
        value = obj[key]
        if not isinstance(value, NUMERIC) or not 0.0 <= value <= 1.0:
            fail(path, f"scenario {section}.{key} is not in [0, 1]")


def scenario_window(path, section, obj):
    if "start" not in obj or "end" not in obj:
        fail(path, f"scenario {section} window missing start/end")
    if not (isinstance(obj["start"], NUMERIC) and
            isinstance(obj["end"], NUMERIC) and
            0 <= obj["start"] <= obj["end"]):
        fail(path, f"scenario {section} window needs 0 <= start <= end")


def check_scenario(path, doc):
    scenario_keys(path, "document", doc, SCENARIO_KEYS)
    if not isinstance(doc.get("name"), str) or not doc["name"]:
        fail(path, "scenario needs a non-empty 'name'")
    for key, allowed in (("engine", SCENARIO_ENGINES),
                         ("algorithm", SCENARIO_ALGORITHMS),
                         ("oracle", SCENARIO_ORACLES)):
        if key in doc and doc[key] not in allowed:
            fail(path, f"scenario {key} {doc[key]!r} not in {allowed}")
    if "trials" in doc and (not isinstance(doc["trials"], int)
                            or doc["trials"] < 1):
        fail(path, "scenario trials must be an integer >= 1")
    if "horizon" in doc and (not isinstance(doc["horizon"], NUMERIC)
                             or doc["horizon"] <= 0):
        fail(path, "scenario horizon must be > 0")
    if "workload" in doc:
        workload = doc["workload"]
        scenario_keys(path, "workload", workload, SCENARIO_WORKLOAD_KEYS)
        if "kind" in workload and workload["kind"] not in SCENARIO_WORKLOADS:
            fail(path, f"scenario workload.kind {workload['kind']!r} "
                       f"not in {SCENARIO_WORKLOADS}")
        if "peers" in workload and (not isinstance(workload["peers"], int)
                                    or workload["peers"] < 2):
            fail(path, "scenario workload.peers must be >= 2")
    if "churn" in doc:
        scenario_keys(path, "churn", doc["churn"], SCENARIO_CHURN_KEYS)
        for key in SCENARIO_CHURN_KEYS:
            scenario_fraction(path, "churn", doc["churn"], key)
    for i, window in enumerate(doc.get("faults", []), 1):
        scenario_keys(path, f"faults[{i}]", window, SCENARIO_FAULT_KEYS)
        scenario_window(path, f"faults[{i}]", window)
    for i, domain in enumerate(doc.get("domains", []), 1):
        scenario_keys(path, f"domains[{i}]", domain, SCENARIO_DOMAIN_KEYS)
        if not isinstance(domain.get("name"), str) or not domain["name"]:
            fail(path, f"scenario domains[{i}] needs a non-empty 'name'")
        has_fraction = domain.get("fraction", 0) > 0
        has_members = bool(domain.get("members"))
        if has_fraction == has_members:
            fail(path, f"scenario domains[{i}] takes 'fraction' or "
                       "'members', exactly one")
        scenario_fraction(path, f"domains[{i}]", domain, "fraction")
        windows = domain.get("windows")
        if not isinstance(windows, list) or not windows:
            fail(path, f"scenario domains[{i}] needs a non-empty "
                       "'windows' array")
        for j, window in enumerate(windows, 1):
            scenario_keys(path, f"domains[{i}].windows[{j}]", window,
                          SCENARIO_DOMAIN_WINDOW_KEYS)
            scenario_window(path, f"domains[{i}].windows[{j}]", window)
            if window.get("fault", "crash") not in ("crash", "partition"):
                fail(path, f"scenario domains[{i}].windows[{j}].fault must "
                           "be 'crash' or 'partition'")
    if "adversary" in doc:
        adversary = doc["adversary"]
        scenario_keys(path, "adversary", adversary, SCENARIO_ADVERSARY_KEYS)
        for key in SCENARIO_ADVERSARY_FRACTIONS:
            scenario_fraction(path, "adversary", adversary, key)
        total = sum(adversary.get(key, 0.0)
                    for key in SCENARIO_ADVERSARY_FRACTIONS)
        if total > 1.0 + 1e-9:
            fail(path, "scenario adversary fractions must sum to <= 1")
    if "defense" in doc:
        defense = doc["defense"]
        scenario_keys(path, "defense", defense, SCENARIO_DEFENSE_KEYS)
        thresholds = [defense.get(key) for key in
                      ("probation_threshold", "quarantine_threshold",
                       "blacklist_threshold")]
        present = [t for t in thresholds if t is not None]
        if present != sorted(present):
            fail(path, "scenario defense thresholds must be ordered "
                       "probation <= quarantine <= blacklist")
    if "overload" in doc:
        overload = doc["overload"]
        scenario_keys(path, "overload", overload, SCENARIO_OVERLOAD_KEYS)
        if not overload:
            fail(path, "scenario overload must declare admission, capacity, "
                       "or join_storm")
        if "admission" in overload:
            admission = overload["admission"]
            scenario_keys(path, "overload.admission", admission,
                          SCENARIO_ADMISSION_KEYS)
            rate = admission.get("rate_limit")
            if not isinstance(rate, NUMERIC) or rate <= 0:
                fail(path, "scenario overload.admission.rate_limit must "
                           "be > 0")
            for key in ("window", "retry_after", "breaker_cooldown"):
                if key in admission and (
                        not isinstance(admission[key], NUMERIC)
                        or admission[key] <= 0):
                    fail(path, f"scenario overload.admission.{key} must "
                               "be > 0")
            for key in ("breaker_trip_windows", "breaker_close_windows"):
                if key in admission and (
                        not isinstance(admission[key], int)
                        or admission[key] < 1):
                    fail(path, f"scenario overload.admission.{key} must "
                               "be an integer >= 1")
        if "capacity" in overload:
            capacity = overload["capacity"]
            scenario_keys(path, "overload.capacity", capacity,
                          SCENARIO_CAPACITY_KEYS)
            for key in ("relay_budget", "queue_limit"):
                if key in capacity and (not isinstance(capacity[key], int)
                                        or capacity[key] < 0):
                    fail(path, f"scenario overload.capacity.{key} must "
                               "be an integer >= 0")
            factor = capacity.get("fanout_factor")
            if factor is not None and (not isinstance(factor, NUMERIC)
                                       or not 0 < factor <= 1):
                fail(path, "scenario overload.capacity.fanout_factor must "
                           "be in (0, 1]")
            for key in ("recovery_ticks", "starve_limit"):
                if key in capacity and (not isinstance(capacity[key], int)
                                        or capacity[key] < 1):
                    fail(path, f"scenario overload.capacity.{key} must "
                               "be an integer >= 1")
            for j, squeeze in enumerate(capacity.get("squeezes", []), 1):
                scenario_keys(path, f"overload.capacity.squeezes[{j}]",
                              squeeze, SCENARIO_SQUEEZE_KEYS)
                scenario_window(path, f"overload.capacity.squeezes[{j}]",
                                squeeze)
                sf = squeeze.get("factor")
                if not isinstance(sf, NUMERIC) or not 0 < sf <= 1:
                    fail(path, f"scenario overload.capacity.squeezes[{j}]"
                               ".factor must be in (0, 1]")
        if "join_storm" in overload:
            storm = overload["join_storm"]
            scenario_keys(path, "overload.join_storm", storm,
                          SCENARIO_JOIN_STORM_KEYS)
            if "churn" in doc:
                fail(path, "scenario overload.join_storm and churn are "
                           "mutually exclusive")
            at = storm.get("at")
            if not isinstance(at, NUMERIC) or at < 1:
                fail(path, "scenario overload.join_storm.at must be >= 1")
            fraction = storm.get("fraction")
            if not isinstance(fraction, NUMERIC) or not 0 < fraction < 1:
                fail(path, "scenario overload.join_storm.fraction must be "
                           "in (0, 1)")
    if "feed" in doc:
        feed = doc["feed"]
        scenario_keys(path, "feed", feed, SCENARIO_FEED_KEYS)
        scenario_fraction(path, "feed", feed, "push_loss")
        if feed.get("push_loss", 0.0) >= 1.0:
            fail(path, "scenario feed.push_loss must be < 1")
        for key in ("duration", "recovery_period", "publish_period"):
            if key in feed and (not isinstance(feed[key], NUMERIC)
                                or feed[key] <= 0):
                fail(path, f"scenario feed.{key} must be > 0")
    counts = (len(doc.get("faults", [])), len(doc.get("domains", [])))
    return (f"scenario '{doc['name']}' ({counts[0]} fault windows, "
            f"{counts[1]} domains)")


SPAN_KINDS = ("publish", "source_poll", "relay", "deliver", "repair",
              "drop", "duplicate")
RECEIPT_KINDS = ("source_poll", "deliver", "repair")


def check_span_line(path, i, record):
    if record.get("schema") != "lagover.spans.v1":
        fail(path, f"line {i}: span schema is {record.get('schema')!r}")
    for key in ("item", "span", "node", "hop", "published_at",
                "start", "ts"):
        if key not in record:
            fail(path, f"line {i}: span missing '{key}'")
    if record["span"] not in SPAN_KINDS:
        fail(path, f"line {i}: unknown span kind {record['span']!r}")
    if not isinstance(record["item"], int) or record["item"] < 1:
        fail(path, f"line {i}: span item is not a positive integer")
    if record["ts"] < record["start"]:
        fail(path, f"line {i}: span ts precedes its start")
    if record["span"] in RECEIPT_KINDS:
        if "deadline" not in record:
            fail(path, f"line {i}: receipt span without 'deadline'")
        if "parent" not in record:
            fail(path, f"line {i}: receipt span without 'parent'")
        if record["hop"] < 1:
            fail(path, f"line {i}: receipt span with hop < 1")


def check_postmortem(path, doc):
    if doc.get("schema") != "lagover.postmortem.v1":
        fail(path, f"schema is {doc.get('schema')!r}")
    for key in ("reason", "sim_time", "repro", "events", "spans", "logs",
                "snapshots", "violations", "violations_total"):
        if key not in doc:
            fail(path, f"missing top-level '{key}'")
    for key in ("seed", "flags"):
        if key not in doc["repro"]:
            fail(path, f"repro missing '{key}'")
    if not isinstance(doc["repro"]["seed"], int):
        fail(path, "repro seed is not an integer")
    for i, span in enumerate(doc["spans"], 1):
        check_span_line(path, i, span)
    for i, snapshot in enumerate(doc["snapshots"], 1):
        if "t" not in snapshot or "snapshot" not in snapshot:
            fail(path, f"snapshot {i} missing t/snapshot")
        if not snapshot["snapshot"].startswith("lagover-snapshot v1"):
            fail(path, f"snapshot {i} is not 'lagover-snapshot v1' text")
    times = [snapshot["t"] for snapshot in doc["snapshots"]]
    if times != sorted(times):
        fail(path, "snapshots are not time-sorted")
    for i, violation in enumerate(doc["violations"], 1):
        for key in ("ts", "invariant", "cause"):
            if key not in violation:
                fail(path, f"violation {i} missing '{key}'")
    if doc["violations_total"] < len(doc["violations"]):
        fail(path, "violations_total below the retained violation count")
    for i, sample in enumerate(doc.get("health", []), 1):
        check_health_line(path, i, sample)
    if "metrics" in doc:
        check_metrics_block(path, doc["metrics"])
    return (f"postmortem bundle ({len(doc['spans'])} spans, "
            f"{len(doc['violations'])} violations)")


def check_chrome_trace(path, doc):
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(path, "'traceEvents' is not a non-empty list")
    phases = set()
    for event in events:
        ph = event.get("ph")
        phases.add(ph)
        if ph not in ("M", "i", "X"):
            fail(path, f"unexpected phase {ph!r}")
        if "pid" not in event or "name" not in event:
            fail(path, "event missing pid/name")
        if ph in ("i", "X") and not isinstance(event.get("ts"), NUMERIC):
            fail(path, f"{ph!r} event without numeric 'ts'")
        if ph == "X" and not isinstance(event.get("dur"), NUMERIC):
            fail(path, "'X' event without numeric 'dur'")
    if "M" not in phases:
        fail(path, "no process_name metadata events")
    return f"chrome trace ({len(events)} events)"


def check_jsonl(path, text):
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        fail(path, "empty JSONL stream")
    for i, line in enumerate(lines, 1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            fail(path, f"line {i}: invalid JSON ({err})")
        kind = record.get("kind")
        if kind == "event":
            for key in ("ts", "type", "node"):
                if key not in record:
                    fail(path, f"line {i}: event missing '{key}'")
        elif kind == "log":
            for key in ("ts", "level", "message"):
                if key not in record:
                    fail(path, f"line {i}: log missing '{key}'")
        elif kind == "span":
            check_span_line(path, i, record)
        elif kind in ("run", "sample", "run_end"):
            check_health_line(path, i, record)
        else:
            fail(path, f"line {i}: unknown kind {kind!r}")
    return f"jsonl events ({len(lines)} lines)"


def check_file(path):
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        return check_jsonl(path, text)
    if isinstance(doc, dict) and "traceEvents" in doc:
        return check_chrome_trace(path, doc)
    if isinstance(doc, dict) and doc.get("schema") == "lagover.metrics.v1":
        check_metrics_block(path, doc)
        return "metrics json"
    if isinstance(doc, dict) and doc.get("schema") == "lagover.postmortem.v1":
        return check_postmortem(path, doc)
    if isinstance(doc, dict) and doc.get("schema") == "lagover.scenario.v1":
        return check_scenario(path, doc)
    if isinstance(doc, dict) and \
            doc.get("schema") == "lagover.perf.trajectory.v1":
        return check_perf_trajectory(path, doc)
    if isinstance(doc, dict) and doc.get("schema") == "lagover.perf.v1":
        check_perf_block(path, doc)
        return "perf json"
    if isinstance(doc, dict):
        return check_bench(path, doc)
    return check_jsonl(path, text)


def main(argv):
    if len(argv) < 2:
        print(f"usage: {argv[0]} FILE...", file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        try:
            kind = check_file(path)
            print(f"OK   {path}  [{kind}]")
        except (ValueError, OSError, KeyError, TypeError) as err:
            print(f"FAIL {err}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
