#!/usr/bin/env python3
"""Mechanical formatting gate, clang-format's little sibling.

clang-format (with the repo's .clang-format) is the authority, but it
is not installed everywhere this repo builds. This checker enforces the
subset of the style that never needs layout intelligence — so local
runs and the ctest hook catch drift even without LLVM:

  * no line longer than 80 columns
  * no hard tabs
  * no trailing whitespace
  * every file ends with exactly one newline

CI runs clang-format --dry-run -Werror as well; this script existing
does not excuse format drift that only clang-format can see.

Exit codes: 0 clean, 1 findings.
"""

from __future__ import annotations

import os
import sys

SOURCE_EXTENSIONS = (".hpp", ".cpp", ".h", ".cc")
SCAN_DIRS = ("src", "tests", "bench", "examples")
MAX_COLUMNS = 80


def check_file(path):
    problems = []
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for lineno, line in enumerate(text.splitlines(), 1):
        if len(line) > MAX_COLUMNS:
            problems.append(
                f"{path}:{lineno}: line is {len(line)} columns "
                f"(limit {MAX_COLUMNS})")
        if "\t" in line:
            problems.append(f"{path}:{lineno}: hard tab")
        if line != line.rstrip():
            problems.append(f"{path}:{lineno}: trailing whitespace")
    if text and not text.endswith("\n"):
        problems.append(f"{path}: missing final newline")
    if text.endswith("\n\n"):
        problems.append(f"{path}: multiple final newlines")
    return problems


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    problems = []
    scanned = 0
    for subdir in SCAN_DIRS:
        for dirpath, _, files in os.walk(os.path.join(root, subdir)):
            for name in sorted(files):
                if not name.endswith(SOURCE_EXTENSIONS):
                    continue
                scanned += 1
                problems.extend(
                    check_file(os.path.join(dirpath, name)))
    for problem in problems:
        print(os.path.relpath(problem, root) if os.path.isabs(problem)
              else problem)
    if problems:
        print(f"check_format: {len(problems)} problem(s) in {scanned} "
              f"files")
        return 1
    print(f"check_format: {scanned} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
