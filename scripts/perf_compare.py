#!/usr/bin/env python3
"""Diff two perf trajectories and gate on regressions.

A *trajectory* is a "lagover.perf.trajectory.v1" document mapping
bench names to their "lagover.perf.v1" sections (plus the options the
bench ran with). Inputs may be:

  * a trajectory JSON file (as written by --collect),
  * a directory of "*.bench.json" files carrying "perf" sections,
  * a single bench JSON file with a "perf" section.

Modes:

  perf_compare.py BASELINE CURRENT [thresholds...]
      Print a regression table; exit 1 when any metric regresses
      beyond its threshold.

  perf_compare.py --collect DIR_OR_FILES... -o OUT
      Merge bench JSONs into one trajectory document (BENCH_PERF.json).

  perf_compare.py --self-test
      Prove the gate fires: a synthetic 2x wall-time slowdown must
      regress, and an identical trajectory must pass.

Metrics and their default thresholds (fraction over baseline that
counts as a regression; override with the flags shown):

  wall_time_s      10%   --wall-threshold     timing, machine-sensitive
  peak_rss_kb       5%   --rss-threshold
  alloc.count       5%   --count-threshold    deterministic-ish
  rounds            2%   --count-threshold    deterministic
  messages          2%   --count-threshold    deterministic

Timing metrics only gate runs recorded on comparable hardware (the CI
job pins one runner class and keeps its own baseline); the count
metrics are deterministic for a given seed and catch real complexity
regressions anywhere. Improvements are reported, never fatal.

Exit codes: 0 clean, 1 regressions (or failed self-test), 2 usage.
"""

import argparse
import json
import os
import sys

TRAJECTORY_SCHEMA = "lagover.perf.trajectory.v1"
PERF_SCHEMA = "lagover.perf.v1"


def load_perf_section(path):
    """(bench_name, options, perf) from one bench/perf JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("schema") == PERF_SCHEMA:
        name = os.path.basename(path).split(".")[0]
        return name, {}, doc
    perf = doc.get("perf")
    if perf is None:
        return None
    return doc.get("bench", os.path.basename(path)), \
        doc.get("options", {}), perf


def collect(paths):
    """Merge bench JSONs (files or directories) into a trajectory."""
    benches = {}
    files = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".json"))
        else:
            files.append(path)
    for path in files:
        entry = load_perf_section(path)
        if entry is None:
            print(f"note: {path} has no perf section, skipped",
                  file=sys.stderr)
            continue
        name, options, perf = entry
        benches[name] = {"options": options, "perf": perf}
    return {"schema": TRAJECTORY_SCHEMA, "benches": benches}


def load_trajectory(path):
    if os.path.isdir(path):
        return collect([path])
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("schema") == TRAJECTORY_SCHEMA:
        return doc
    entry = load_perf_section(path)
    if entry is None:
        raise ValueError(f"{path}: neither a trajectory nor a bench "
                         "JSON with a perf section")
    name, options, perf = entry
    return {"schema": TRAJECTORY_SCHEMA,
            "benches": {name: {"options": options, "perf": perf}}}


def metric_specs(args):
    """(label, path-into-perf-dict, threshold) per gated metric."""
    return [
        ("wall_time_s", ("wall_time_s",), args.wall_threshold),
        ("peak_rss_kb", ("peak_rss_kb",), args.rss_threshold),
        ("alloc.count", ("alloc", "count"), args.count_threshold),
        ("rounds", ("rounds",), args.count_threshold),
        ("messages", ("messages",), args.count_threshold),
    ]


def dig(doc, path):
    for key in path:
        if not isinstance(doc, dict) or key not in doc:
            return None
        doc = doc[key]
    return doc


def compare(baseline, current, args):
    """Returns (rows, regressions). Rows are display tuples."""
    rows = []
    regressions = []
    base_benches = baseline.get("benches", {})
    cur_benches = current.get("benches", {})
    for name in sorted(set(base_benches) | set(cur_benches)):
        if name not in cur_benches:
            rows.append((name, "-", "missing from current", "", "WARN"))
            continue
        if name not in base_benches:
            rows.append((name, "-", "new bench (no baseline)", "", "NEW"))
            continue
        base_entry = base_benches[name]
        cur_entry = cur_benches[name]
        base_opts = base_entry.get("options", {})
        cur_opts = cur_entry.get("options", {})
        if base_opts and cur_opts and base_opts != cur_opts:
            rows.append((name, "-", "options differ; not comparable",
                         "", "WARN"))
            continue
        for label, path, threshold in metric_specs(args):
            base_value = dig(base_entry.get("perf", {}), path)
            cur_value = dig(cur_entry.get("perf", {}), path)
            if not base_value or cur_value is None:
                continue  # zero/absent baselines gate nothing
            delta = (cur_value - base_value) / base_value
            status = "ok"
            if delta > threshold:
                status = "REGRESSION"
                regressions.append(
                    f"{name}:{label} +{delta * 100.0:.1f}% "
                    f"(limit +{threshold * 100.0:.0f}%)")
            elif delta < -threshold:
                status = "improved"
            rows.append((name, label,
                         f"{base_value:g} -> {cur_value:g}",
                         f"{delta * 100.0:+.1f}%", status))
    return rows, regressions


def print_table(rows, markdown):
    header = ("bench", "metric", "baseline -> current", "delta", "status")
    if markdown:
        print("| " + " | ".join(header) + " |")
        print("|" + "---|" * len(header))
        for row in rows:
            print("| " + " | ".join(str(cell) for cell in row) + " |")
        return
    widths = [max(len(str(row[i])) for row in rows + [header])
              for i in range(len(header))]
    for row in [header] + rows:
        print("  ".join(str(cell).ljust(width)
                        for cell, width in zip(row, widths)).rstrip())


def run_compare(args):
    baseline = load_trajectory(args.baseline)
    current = load_trajectory(args.current)
    rows, regressions = compare(baseline, current, args)
    if not rows:
        print("perf_compare: no comparable benches", file=sys.stderr)
        return 1
    print_table(rows, args.markdown)
    if regressions:
        print()
        for regression in regressions:
            print(f"REGRESSION  {regression}")
        print(f"perf_compare: {len(regressions)} regression(s)")
        return 1
    print("\nperf_compare: no regressions")
    return 0


def self_test():
    base_perf = {
        "schema": PERF_SCHEMA,
        "wall_time_s": 1.0,
        "peak_rss_kb": 50000,
        "rounds": 1000,
        "messages": 9000,
        "alloc": {"count": 400000, "bytes": 1 << 24, "frees": 400000},
        "phases": {},
        "scopes": {},
    }
    def trajectory(perf):
        return {"schema": TRAJECTORY_SCHEMA,
                "benches": {"bench_x": {"options": {"peers": 40},
                                        "perf": perf}}}
    args = parse_args(["base", "current"])  # defaults only

    slow = dict(base_perf, wall_time_s=2.0)  # the injected 2x slowdown
    _, regressions = compare(trajectory(base_perf), trajectory(slow), args)
    if not any("wall_time_s" in r for r in regressions):
        print("self-test FAILED: 2x wall slowdown not flagged")
        return 1

    _, regressions = compare(trajectory(base_perf),
                             trajectory(dict(base_perf)), args)
    if regressions:
        print(f"self-test FAILED: identical trajectories "
              f"regressed: {regressions}")
        return 1

    hungry = dict(base_perf,
                  alloc={"count": 500000, "bytes": 1 << 25, "frees": 0})
    _, regressions = compare(trajectory(base_perf), trajectory(hungry),
                             args)
    if not any("alloc.count" in r for r in regressions):
        print("self-test FAILED: +25% allocation growth not flagged")
        return 1

    jitter = dict(base_perf, wall_time_s=1.05)  # 5% < 10% threshold
    _, regressions = compare(trajectory(base_perf), trajectory(jitter),
                             args)
    if regressions:
        print(f"self-test FAILED: 5% wall jitter flagged: {regressions}")
        return 1

    print("self-test OK: gate fires on 2x wall and +25% allocs, "
          "tolerates 5% jitter")
    return 0


def parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="perf_compare.py",
        description="diff lagover.perf.v1 trajectories and gate CI")
    parser.add_argument("baseline", nargs="?",
                        help="baseline trajectory/bench JSON or directory")
    parser.add_argument("current", nargs="?",
                        help="current trajectory/bench JSON or directory")
    parser.add_argument("--collect", nargs="+", metavar="PATH",
                        help="merge bench JSONs into a trajectory")
    parser.add_argument("-o", "--output", default="BENCH_PERF.json",
                        help="output path for --collect")
    parser.add_argument("--wall-threshold", type=float, default=0.10,
                        help="wall-time regression fraction (default 0.10)")
    parser.add_argument("--rss-threshold", type=float, default=0.05,
                        help="peak-RSS regression fraction (default 0.05)")
    parser.add_argument("--count-threshold", type=float, default=0.05,
                        help="count-metric regression fraction "
                             "(default 0.05)")
    parser.add_argument("--markdown", action="store_true",
                        help="emit a GitHub-flavored markdown table")
    parser.add_argument("--self-test", action="store_true",
                        help="prove the gate fires on a synthetic "
                             "2x slowdown")
    return parser.parse_args(argv)


def main(argv):
    args = parse_args(argv)
    if args.self_test:
        return self_test()
    if args.collect:
        trajectory = collect(args.collect)
        if not trajectory["benches"]:
            print("perf_compare: --collect found no perf sections",
                  file=sys.stderr)
            return 1
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(trajectory, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output} "
              f"({len(trajectory['benches'])} benches)")
        return 0
    if not args.baseline or not args.current:
        print("usage: perf_compare.py BASELINE CURRENT "
              "(or --collect/--self-test)", file=sys.stderr)
        return 2
    return run_compare(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
