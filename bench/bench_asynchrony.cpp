// Section 5.3 (end) reproduction: asynchronous interactions — "different
// peers need different amount of time to complete the interactions.
// Asynchrony slowed down the overlay construction, but interestingly did
// not affect the eventual convergence." We compare the synchronous
// round-based engine against the event-driven engine with increasingly
// dispersed interaction durations. Expected shape: construction time
// grows with the mean/variance of interaction durations; convergence
// rate stays 100%.
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/async_engine.hpp"

namespace lagover {
namespace {

struct DurationProfile {
  const char* name;
  double min;
  double max;
};

constexpr DurationProfile kProfiles[] = {
    {"sync-equivalent [1.0, 1.0]", 1.0, 1.0},
    {"mild async     [0.5, 1.5]", 0.5, 1.5},
    {"moderate async [0.5, 2.5]", 0.5, 2.5},
    {"heavy async    [1.5, 4.5]", 1.5, 4.5},
};

int run(int argc, char** argv) {
  auto options = bench::BenchOptions::parse(argc, argv);
  if (options.peers > 120) options.peers = 120;

  std::cout << "# Section 5.3 — asynchronous construction (hybrid, Oracle "
               "Random-Delay, "
            << options.peers << " peers, median of " << options.trials
            << ")\n# time unit = one synchronous round's interaction\n";

  bench::BenchJson bench_json("bench_asynchrony", options);
  bench::TelemetryExport telemetry_export(options);

  Table table({"workload", "interaction durations", "median time",
               "converged trials"});
  for (auto kind : {WorkloadKind::kRand, WorkloadKind::kBiCorr}) {
    // Synchronous reference (rounds == time units).
    {
      ExperimentSpec spec;
      spec.population = bench::population_factory(kind, options.peers);
      spec.config.algorithm = AlgorithmKind::kHybrid;
      spec.trials = options.trials;
      spec.max_rounds = options.max_rounds;
      spec.base_seed = options.seed;
      const auto result = run_experiment(spec);
      table.add_row({to_string(kind), "synchronous rounds",
                     format_convergence_cell(result),
                     std::to_string(options.trials - result.failures) + "/" +
                         std::to_string(options.trials)});
      bench_json.add_scalar(to_string(kind) + ".sync_median_rounds",
                            result.median_rounds());
    }
    for (const auto& profile : kProfiles) {
      Sample times;
      int converged = 0;
      for (int trial = 0; trial < options.trials; ++trial) {
        const std::uint64_t seed =
            options.seed + static_cast<std::uint64_t>(trial) * 7919;
        WorkloadParams params;
        params.peers = options.peers;
        params.seed = seed;
        AsyncConfig config;
        config.algorithm = AlgorithmKind::kHybrid;
        config.min_interaction_time = profile.min;
        config.max_interaction_time = profile.max;
        config.seed = seed;
        AsyncEngine engine(generate_workload(kind, params), config);
        const auto result = engine.run_until_converged(
            static_cast<double>(options.max_rounds) * 4.0);
        if (result.has_value()) {
          times.add(*result);
          ++converged;
        }
      }
      table.add_row({to_string(kind), profile.name,
                     times.empty() ? "DNC" : format_double(times.median(), 0),
                     std::to_string(converged) + "/" +
                         std::to_string(options.trials)});
      // The section's claim is that heavy asynchrony slows but never
      // prevents convergence — record the extreme profile's numbers.
      if (&profile == &kProfiles[3]) {
        bench_json.add_scalar(to_string(kind) + ".heavy_async_median_time",
                              times.empty() ? -1.0 : times.median());
        bench_json.add_count(
            to_string(kind) + ".heavy_async_converged",
            static_cast<std::uint64_t>(converged));
      }
      telemetry_export.sample(profile.max);
    }
  }
  bench::print_table("asynchrony slows construction, convergence unaffected",
                     table, options, "asynchrony");
  bench_json.add_table("asynchrony", table);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
