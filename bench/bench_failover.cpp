// Failover sweep: fixed-miss vs phi-accrual failure detection, with and
// without the local failover ladder, under a crash + message-drop plan.
// Per policy cell the table reports mean orphan time (crash/suspicion ->
// re-attach, the headline metric), mean detection latency (parent crash
// -> the orphaned child's first own orphan-loop step), the false
// -positive rate of suspicions (suspected parent was actually alive),
// epoch fences, and ladder attaches. Expected shape: phi-accrual cuts
// mean orphan time versus the fixed threshold at a comparable
// false-positive rate, and the ladder cuts it further by skipping the
// Oracle round trip; epoch fencing keeps stale attachments at zero
// throughout (asserted via audit_epochs every sample).
#include <algorithm>
#include <iostream>
#include <memory>

#include "bench/bench_util.hpp"
#include "core/async_engine.hpp"
#include "core/snapshot.hpp"
#include "core/validator.hpp"
#include "fault/fault_injector.hpp"
#include "metrics/failover.hpp"

namespace lagover {
namespace {

struct Policy {
  const char* name;
  health::DetectionPolicy detection;
  health::FailoverPolicy failover;
};

constexpr Policy kPolicies[] = {
    {"fixed+oracle", health::DetectionPolicy::kFixedMisses,
     health::FailoverPolicy::kOracleRejoin},
    {"fixed+ladder", health::DetectionPolicy::kFixedMisses,
     health::FailoverPolicy::kLadder},
    {"phi+oracle", health::DetectionPolicy::kPhiAccrual,
     health::FailoverPolicy::kOracleRejoin},
    {"phi+ladder", health::DetectionPolicy::kPhiAccrual,
     health::FailoverPolicy::kLadder},
};

/// Crash storms plus a lossy window: the drop window exercises the
/// detectors (silence without death -> false-positive pressure), the
/// crash windows exercise detection latency, failover, and fencing.
fault::FaultPlan failover_plan() {
  fault::FaultPlan plan;
  plan.add(fault::FaultPlan::crashes(40.0, 90.0, 0.02, 6.0))
      .add(fault::FaultPlan::drop(110.0, 150.0, 0.25))
      .add(fault::FaultPlan::crashes(170.0, 220.0, 0.03, 8.0));
  return plan;
}

int run(int argc, char** argv) {
  auto options = bench::BenchOptions::parse(argc, argv);
  const double horizon =
      std::max(300.0, static_cast<double>(options.max_rounds));

  std::cout << "# Failover sweep — crash storms [40,90) p=0.02 and "
               "[170,220) p=0.03, drop window [110,150) p=0.25; "
            << options.peers << " peers, " << options.trials
            << " trials per cell, horizon " << horizon << "\n";

  bench::BenchJson bench_json("bench_failover", options);
  bench::TelemetryExport telemetry_export(options);
  Table table({"policy", "mean orphan t", "p90 orphan t", "mean detect t",
               "fp rate", "suspicions", "fences", "ladder", "stale edges"});
#ifdef LAGOVER_AUDIT
  // Paper-invariant audit (docs/STATIC_ANALYSIS.md): any violation
  // across any policy cell fails the bench. Key emitted only in audit
  // builds so release bench JSON stays byte-identical.
  std::uint64_t audit_violations = 0;
#endif

  for (const Policy& policy : kPolicies) {
    Sample orphan_times;
    Sample detection_latencies;
    double suspicions = 0.0;
    double false_suspicions = 0.0;
    std::uint64_t fences = 0;
    std::uint64_t ladder_attaches = 0;
    std::uint64_t stale_edges = 0;

    for (int trial = 0; trial < options.trials; ++trial) {
      const std::uint64_t seed =
          options.seed + static_cast<std::uint64_t>(trial) * 7919;
      WorkloadParams params;
      params.peers = options.peers;
      params.seed = seed;

      AsyncConfig config;
      config.seed = seed;
      config.health.detection = policy.detection;
      config.health.failover = policy.failover;
      config.faults = std::make_shared<fault::FaultInjector>(
          failover_plan(), seed ^ 0xfa170);
      AsyncEngine engine(generate_workload(WorkloadKind::kBiUnCorr, params),
                         config);
#ifdef LAGOVER_AUDIT
      engine.audit_bus().subscribe([](const InvariantViolation& v) {
        std::cerr << "AUDIT " << to_string(v.invariant) << " cause="
                  << v.cause << " node=" << v.node << " " << v.detail
                  << "\n";
      });
#endif
      telemetry::FlightRecorder* flight = telemetry_export.recorder();
      AuditBus::SubscriptionId flight_sub = 0;
      if (flight != nullptr) {
        flight->set_fault_plan(failover_plan().to_string());
        flight_sub = attach_flight_recorder(engine.audit_bus(), *flight);
      }
      metrics::FailoverRecorder recorder(engine.overlay());
      recorder.subscribe(engine.trace_bus());
      // Epoch-consistency audit on a steady cadence: a single stale
      // -epoch attachment anywhere in the run fails the bench.
      engine.set_sampler(5.0, [&](SimTime t) {
        const EpochAudit audit =
            audit_epochs(engine.overlay(), engine.epochs());
        stale_edges += audit.stale_edges.size();
        if (!audit.acyclic) {
          std::cerr << "FATAL: cycle detected\n";
          std::abort();
        }
        if (flight != nullptr)
          flight->note_snapshot(t, to_snapshot(engine.overlay()));
        telemetry_export.sample(t);
      });
      engine.run_for(horizon);
      if (flight != nullptr) engine.audit_bus().unsubscribe(flight_sub);
#ifdef LAGOVER_AUDIT
      audit_violations += engine.audit_violations();
#endif

      orphan_times.add_all(recorder.orphan_time().values());
      detection_latencies.add_all(recorder.detection_latency().values());
      suspicions += static_cast<double>(recorder.suspicions());
      false_suspicions += static_cast<double>(recorder.false_suspicions());
      fences += engine.epochs().fences();
      ladder_attaches += recorder.failover_attaches();
    }

    const double fp_rate =
        suspicions == 0.0 ? 0.0 : false_suspicions / suspicions;
    table.add_row(
        {policy.name,
         orphan_times.empty() ? "-" : format_double(orphan_times.mean(), 2),
         orphan_times.empty() ? "-"
                              : format_double(orphan_times.quantile(0.9), 2),
         detection_latencies.empty()
             ? "-"
             : format_double(detection_latencies.mean(), 2),
         format_double(fp_rate, 3), format_double(suspicions, 0),
         std::to_string(fences), std::to_string(ladder_attaches),
         std::to_string(stale_edges)});

    const std::string prefix = std::string(policy.name);
    bench_json.add_scalar(prefix + ".mean_orphan_time",
                          orphan_times.empty() ? -1.0 : orphan_times.mean());
    bench_json.add_scalar(
        prefix + ".mean_detection_latency",
        detection_latencies.empty() ? -1.0 : detection_latencies.mean());
    bench_json.add_scalar(prefix + ".false_positive_rate", fp_rate);
    bench_json.add_count(prefix + ".fences", fences);
    bench_json.add_count(prefix + ".ladder_attaches", ladder_attaches);
    bench_json.add_count(prefix + ".stale_edges", stale_edges);
  }

  bench::print_table("failure detection / failover policy sweep", table,
                     options, "failover");
  bench_json.add_table("failover", table);
#ifdef LAGOVER_AUDIT
  bench_json.add_count("audit_violations", audit_violations);
  if (audit_violations != 0) {
    std::cerr << "AUDIT FAILED: " << audit_violations
              << " invariant violation(s) across the sweep\n";
    return 1;
  }
  std::cout << "# audit: clean (" << audit_violations << " violations)\n";
#endif
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
