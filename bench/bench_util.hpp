// Shared helpers for the bench binaries: standard flag handling, the
// paper's default experiment parameters, and table printing.
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "common/flags.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "metrics/experiment.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/health.hpp"
#include "telemetry/perf.hpp"
#include "workload/constraints.hpp"

namespace lagover::bench {

/// Flags every bench accepts:
///   --peers N         population size (default 120, the paper's)
///   --trials N        repetitions per cell (default 5, paper Section 5.1)
///   --max-rounds N    convergence budget before reporting DNC
///   --seed N          base seed
///   --csv PREFIX      also write each table as PREFIX<table>.csv
///   --json PREFIX     also write each table as PREFIX<table>.json
///   --bench-json PATH machine-readable run summary (see BenchJson);
///                     default <bench>.bench.json, "-" disables
///   --telemetry       enable the telemetry substrate (metrics,
///                     profiler, event stream); a "metrics" block is
///                     embedded in the bench JSON
///   --trace-out PATH  write a Chrome trace_event file (Perfetto /
///                     chrome://tracing loadable); implies --telemetry
///   --events-out PATH stream events + log lines as JSONL; implies
///                     --telemetry
///   --spans-out PATH  stream per-item hop spans ("lagover.spans.v1")
///                     as JSONL; implies --telemetry
///   --postmortem-out PATH  arm a flight recorder that dumps a
///                     "lagover.postmortem.v1" bundle on the first
///                     invariant violation (or on explicit request);
///                     implies --telemetry
///   --perf            record a "perf" section ("lagover.perf.v1") in
///                     the bench JSON: wall time, rounds/sec, peak
///                     RSS, allocation counts, message complexity,
///                     per-phase splits; implies --telemetry
///   --health          activate the overlay health observatory
///                     (telemetry/health.hpp): incremental tree-quality
///                     aggregates + convergence tracking, embedded as a
///                     "health" block in the bench JSON; implies
///                     --telemetry
///   --health-out PATH stream per-round health samples as
///                     "lagover.health.v1" JSONL; implies --health
///   --stability-rounds N  consecutive converged samples required to
///                     latch a run's convergence round (default 1)
///   --log-level L     logger threshold: trace|debug|info|warn|error|off
struct BenchOptions {
  std::size_t peers = 120;
  int trials = 5;
  Round max_rounds = 3000;
  std::uint64_t seed = 1;
  std::string csv_prefix;
  std::string json_prefix;
  std::string bench_json;  ///< "" = default path, "-" = disabled
  bool telemetry = false;
  std::string trace_out;       ///< "" = no Chrome trace
  std::string events_out;      ///< "" = no JSONL stream
  std::string spans_out;       ///< "" = no span JSONL stream
  std::string postmortem_out;  ///< "" = no flight recorder
  bool perf = false;           ///< record the "lagover.perf.v1" section
  bool health = false;         ///< activate the overlay health observatory
  std::string health_out;      ///< "" = no health JSONL stream
  int stability_rounds = 1;    ///< convergence-tracker stability window
  /// The run's argv flags joined by spaces — embedded in post-mortem
  /// bundles so a dump carries its own repro command line.
  std::string argv_flags;

  static BenchOptions parse(int argc, char** argv) {
    const Flags flags(argc, argv);
    BenchOptions options;
    options.peers =
        static_cast<std::size_t>(flags.get_int("peers", 120));
    options.trials = static_cast<int>(flags.get_int("trials", 5));
    options.max_rounds =
        static_cast<Round>(flags.get_int("max-rounds", 3000));
    options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    options.csv_prefix = flags.get_string("csv", "");
    options.json_prefix = flags.get_string("json", "");
    options.bench_json = flags.get_string("bench-json", "");
    options.trace_out = flags.get_string("trace-out", "");
    options.events_out = flags.get_string("events-out", "");
    options.spans_out = flags.get_string("spans-out", "");
    options.postmortem_out = flags.get_string("postmortem-out", "");
    options.perf = flags.get_bool("perf", false);
    options.health_out = flags.get_string("health-out", "");
    // --health-out implies --health: a stream needs the recorder.
    options.health =
        flags.get_bool("health", false) || !options.health_out.empty();
    options.stability_rounds =
        static_cast<int>(flags.get_int("stability-rounds", 1));
    // --perf implies --telemetry: rounds and message complexity are
    // read as deltas of the metrics-registry counters. --health does
    // too: the observatory rides the telemetry edge-event stream.
    options.telemetry = flags.get_bool("telemetry", false) ||
                        options.perf || options.health ||
                        !options.trace_out.empty() ||
                        !options.events_out.empty() ||
                        !options.spans_out.empty() ||
                        !options.postmortem_out.empty();
    if (flags.has("log-level"))
      Logger::instance().set_level(
          parse_log_level(flags.get_string("log-level", "warn")));
    for (int i = 1; i < argc; ++i) {
      if (i > 1) options.argv_flags += ' ';
      options.argv_flags += argv[i];
    }
    telemetry::set_enabled(options.telemetry);
    return options;
  }
};

/// Machine-readable bench summary, schema "lagover.bench.v1":
///
///   {
///     "schema":  "lagover.bench.v1",
///     "bench":   "<binary name>",
///     "options": {"peers": N, "trials": N, "max_rounds": N, "seed": N},
///     "summary": {"<metric>": <number>, ...},   // headline scalars
///     "tables":  {"<name>": {"header": [...],   // the printed tables,
///                            "rows": [[...]]}}  // cells as strings
///   }
///
/// "summary" holds the bench's acceptance-relevant scalars (e.g.
/// bench_failover's mean orphan time per detection policy) so CI and
/// scripts can assert on them without parsing console tables.
///
/// With --telemetry a "metrics" block (schema "lagover.metrics.v1") is
/// embedded alongside:
///
///   "metrics": {
///     "schema":     "lagover.metrics.v1",
///     "counters":   {"<name>": <integer>, ...},
///     "gauges":     {"<name>": <number>, ...},
///     "histograms": {"<name>": {"count": N, "sum": X, "min": X,
///                               "max": X, "mean": X, "p50": X,
///                               "p90": X, "p99": X, "underflow": N,
///                               "overflow": N,
///                               "buckets": [{"lo": X, "hi": X,
///                                            "count": N}, ...]}},
///     "profile":    {"<scope>": {"calls": N, "total_ns": N,
///                                "mean_ns": X, "max_ns": N}},
///     "timeseries": {"<metric>": [[t, value], ...]}   // optional
///   }
class BenchJson {
 public:
  BenchJson(std::string bench, const BenchOptions& options)
      : bench_(std::move(bench)) {
    root_ = Json::object();
    root_.set("schema", Json::string("lagover.bench.v1"));
    root_.set("bench", Json::string(bench_));
    Json opts = Json::object();
    opts.set("peers", Json::integer(static_cast<std::int64_t>(options.peers)));
    opts.set("trials", Json::integer(options.trials));
    opts.set("max_rounds",
             Json::integer(static_cast<std::int64_t>(options.max_rounds)));
    opts.set("seed", Json::integer(static_cast<std::int64_t>(options.seed)));
    root_.set("options", std::move(opts));
    summary_ = Json::object();
    tables_ = Json::object();
  }

  void add_scalar(const std::string& key, double value) {
    summary_.set(key, Json::number(value));
  }
  void add_count(const std::string& key, std::uint64_t value) {
    summary_.set(key, Json::integer(static_cast<std::int64_t>(value)));
  }

  void add_table(const std::string& name, const Table& table) {
    Json t = Json::object();
    Json header = Json::array();
    for (const std::string& cell : table.header())
      header.push_back(Json::string(cell));
    t.set("header", std::move(header));
    Json rows = Json::array();
    for (const auto& row : table.rows()) {
      Json r = Json::array();
      for (const std::string& cell : row) r.push_back(Json::string(cell));
      rows.push_back(std::move(r));
    }
    t.set("rows", std::move(rows));
    tables_.set(name, std::move(t));
  }

  /// Embeds the "lagover.metrics.v1" block (see the class comment).
  void set_metrics(Json metrics) {
    has_metrics_ = true;
    metrics_ = std::move(metrics);
  }

  /// Embeds the "lagover.perf.v1" block (recorded with --perf): wall
  /// time, peak RSS, allocation counts, per-phase rounds/sec, and
  /// per-round message complexity. See docs/PERFORMANCE.md.
  void set_perf(Json perf) {
    has_perf_ = true;
    perf_ = std::move(perf);
  }

  /// Embeds the "lagover.health.v1" block (recorded with --health):
  /// per-run convergence rounds and the final tree-quality sample. See
  /// docs/OBSERVABILITY.md, "Overlay health timeline".
  void set_health(Json health) {
    has_health_ = true;
    health_ = std::move(health);
  }

  /// Writes to the path implied by the options ("-" disables; empty
  /// selects "<bench>.bench.json"). Returns false on I/O failure.
  bool write(const BenchOptions& options) {
    if (options.bench_json == "-") return true;
    const std::string path = options.bench_json.empty()
                                 ? bench_ + ".bench.json"
                                 : options.bench_json;
    root_.set("summary", summary_);
    root_.set("tables", tables_);
    if (has_metrics_) root_.set("metrics", metrics_);
    if (has_perf_) root_.set("perf", perf_);
    if (has_health_) root_.set("health", health_);
    std::ofstream out(path);
    if (!out) return false;
    out << root_.dump_pretty() << '\n';
    if (out) std::cout << "\nwrote " << path << '\n';
    return static_cast<bool>(out);
  }

 private:
  std::string bench_;
  Json root_;
  Json summary_;
  Json tables_;
  Json metrics_;
  Json perf_;
  Json health_;
  bool has_metrics_ = false;
  bool has_perf_ = false;
  bool has_health_ = false;
};

/// RAII bundle of the telemetry exporters a bench needs: builds the
/// writers selected by the options, exposes sample(t) for per-round
/// snapshots, and on finish() writes the trace/JSONL outputs and embeds
/// the "lagover.metrics.v1" block into the bench JSON. Inert (all null)
/// when telemetry is off, so benches can call it unconditionally.
class TelemetryExport {
 public:
  explicit TelemetryExport(const BenchOptions& options) : options_(options) {
    if (!options.telemetry) return;
    telemetry::MetricsRegistry::instance().reset();
    telemetry::Profiler::instance().reset();
    sampler_ = std::make_unique<telemetry::TimeseriesSampler>();
    if (!options.trace_out.empty())
      trace_ = std::make_unique<telemetry::ChromeTraceWriter>();
    if (!options.events_out.empty())
      events_ =
          std::make_unique<telemetry::JsonlEventWriter>(options.events_out);
    if (!options.spans_out.empty())
      spans_ = std::make_unique<telemetry::JsonlEventWriter>(
          options.spans_out, /*spans_only=*/true);
    if (!options.postmortem_out.empty()) {
      recorder_ = std::make_unique<telemetry::FlightRecorder>();
      recorder_->set_repro(options.seed, options.argv_flags);
      recorder_->set_dump_on_violation(options.postmortem_out);
    }
    if (options.perf) {
      // Created after the registry reset above so the recorder's
      // baseline round/message snapshot starts from zero.
      telemetry::set_alloc_tracking(true);
      perf_ = std::make_unique<telemetry::PerfRecorder>();
      telemetry::PerfRecorder::set_active(perf_.get());
    }
    if (options.health) {
      telemetry::OverlayHealthRecorder::Config config;
      config.stability_rounds = std::max(1, options.stability_rounds);
      health_ = std::make_unique<telemetry::OverlayHealthRecorder>(config);
      if (!options.health_out.empty() &&
          !health_->set_stream(options.health_out))
        std::cerr << "failed to open " << options.health_out << '\n';
      if (recorder_ != nullptr)
        health_->set_sample_mirror(
            [recorder = recorder_.get()](const Json& sample) {
              recorder->note_health(sample);
            });
      telemetry::OverlayHealthRecorder::set_active(health_.get());
    }
  }

  ~TelemetryExport() {
    if (perf_ != nullptr) telemetry::set_alloc_tracking(false);
  }

  TelemetryExport(const TelemetryExport&) = delete;
  TelemetryExport& operator=(const TelemetryExport&) = delete;

  /// Snapshot every counter/gauge at time t (per round / sim tick).
  void sample(double t) {
    if (sampler_) sampler_->sample(t);
  }

  /// The armed flight recorder, or nullptr without --postmortem-out.
  /// Benches feed it the fault-plan digest, overlay snapshots, and
  /// violations (via attach_flight_recorder on an engine's audit bus).
  telemetry::FlightRecorder* recorder() noexcept { return recorder_.get(); }

  /// The perf recorder, or nullptr without --perf. (Benches normally
  /// talk to it through telemetry::PerfPhase scopes instead.)
  telemetry::PerfRecorder* perf() noexcept { return perf_.get(); }

  /// The health observatory, or nullptr without --health. Benches read
  /// completed_runs() to embed per-cell convergence scalars.
  telemetry::OverlayHealthRecorder* health() noexcept {
    return health_.get();
  }

  /// Writes the Chrome trace (when requested) and embeds the metrics
  /// summary. Call once, after the run and before json.write().
  void finish(BenchJson& json) {
    if (!options_.telemetry) return;
    if (perf_ != nullptr) {
      telemetry::set_alloc_tracking(false);
      perf_->finish();
      json.set_perf(perf_->to_json());
    }
    if (health_ != nullptr) {
      json.set_health(health_->to_json());
      if (!options_.health_out.empty())
        std::cout << "wrote " << options_.health_out << " ("
                  << health_->stream_lines() << " lines)\n";
    }
    json.set_metrics(
        telemetry::metrics_summary_json(sampler_.get()));
    if (trace_ != nullptr) {
      if (trace_->write(options_.trace_out))
        std::cout << "wrote " << options_.trace_out << " ("
                  << trace_->event_count() << " trace events)\n";
      else
        std::cerr << "failed to write " << options_.trace_out << '\n';
    }
    if (events_ != nullptr)
      std::cout << "wrote " << options_.events_out << " ("
                << events_->lines() << " lines)\n";
    if (spans_ != nullptr)
      std::cout << "wrote " << options_.spans_out << " ("
                << spans_->lines() << " lines)\n";
    if (recorder_ != nullptr && recorder_->violation_seen()) {
      if (recorder_->dumped())
        std::cout << "wrote " << options_.postmortem_out << " (post-mortem, "
                  << recorder_->violations_total() << " violation(s))\n";
      else
        std::cerr << "failed to write " << options_.postmortem_out << '\n';
    }
  }

 private:
  BenchOptions options_;
  std::unique_ptr<telemetry::TimeseriesSampler> sampler_;
  std::unique_ptr<telemetry::ChromeTraceWriter> trace_;
  std::unique_ptr<telemetry::JsonlEventWriter> events_;
  std::unique_ptr<telemetry::JsonlEventWriter> spans_;
  std::unique_ptr<telemetry::FlightRecorder> recorder_;
  std::unique_ptr<telemetry::PerfRecorder> perf_;
  std::unique_ptr<telemetry::OverlayHealthRecorder> health_;
};

inline void print_table(const std::string& title, const Table& table,
                        const BenchOptions& options,
                        const std::string& csv_name) {
  std::cout << "\n## " << title << "\n\n" << table.to_string();
  if (!options.csv_prefix.empty())
    table.write_csv(options.csv_prefix + csv_name + ".csv");
  if (!options.json_prefix.empty())
    table.write_json(options.json_prefix + csv_name + ".json");
}

/// Population factory for a workload kind under the bench options.
inline std::function<Population(std::uint64_t)> population_factory(
    WorkloadKind kind, std::size_t peers) {
  return [kind, peers](std::uint64_t seed) {
    WorkloadParams params;
    params.peers = peers;
    params.seed = seed;
    return generate_workload(kind, params);
  };
}

}  // namespace lagover::bench
