// Shared helpers for the bench binaries: standard flag handling, the
// paper's default experiment parameters, and table printing.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "common/flags.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "metrics/experiment.hpp"
#include "workload/constraints.hpp"

namespace lagover::bench {

/// Flags every bench accepts:
///   --peers N         population size (default 120, the paper's)
///   --trials N        repetitions per cell (default 5, paper Section 5.1)
///   --max-rounds N    convergence budget before reporting DNC
///   --seed N          base seed
///   --csv PREFIX      also write each table as PREFIX<table>.csv
///   --json PREFIX     also write each table as PREFIX<table>.json
///   --bench-json PATH machine-readable run summary (see BenchJson);
///                     default <bench>.bench.json, "-" disables
struct BenchOptions {
  std::size_t peers = 120;
  int trials = 5;
  Round max_rounds = 3000;
  std::uint64_t seed = 1;
  std::string csv_prefix;
  std::string json_prefix;
  std::string bench_json;  ///< "" = default path, "-" = disabled

  static BenchOptions parse(int argc, char** argv) {
    const Flags flags(argc, argv);
    BenchOptions options;
    options.peers =
        static_cast<std::size_t>(flags.get_int("peers", 120));
    options.trials = static_cast<int>(flags.get_int("trials", 5));
    options.max_rounds =
        static_cast<Round>(flags.get_int("max-rounds", 3000));
    options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    options.csv_prefix = flags.get_string("csv", "");
    options.json_prefix = flags.get_string("json", "");
    options.bench_json = flags.get_string("bench-json", "");
    return options;
  }
};

/// Machine-readable bench summary, schema "lagover.bench.v1":
///
///   {
///     "schema":  "lagover.bench.v1",
///     "bench":   "<binary name>",
///     "options": {"peers": N, "trials": N, "max_rounds": N, "seed": N},
///     "summary": {"<metric>": <number>, ...},   // headline scalars
///     "tables":  {"<name>": {"header": [...],   // the printed tables,
///                            "rows": [[...]]}}  // cells as strings
///   }
///
/// "summary" holds the bench's acceptance-relevant scalars (e.g.
/// bench_failover's mean orphan time per detection policy) so CI and
/// scripts can assert on them without parsing console tables.
class BenchJson {
 public:
  BenchJson(std::string bench, const BenchOptions& options)
      : bench_(std::move(bench)) {
    root_ = Json::object();
    root_.set("schema", Json::string("lagover.bench.v1"));
    root_.set("bench", Json::string(bench_));
    Json opts = Json::object();
    opts.set("peers", Json::integer(static_cast<std::int64_t>(options.peers)));
    opts.set("trials", Json::integer(options.trials));
    opts.set("max_rounds",
             Json::integer(static_cast<std::int64_t>(options.max_rounds)));
    opts.set("seed", Json::integer(static_cast<std::int64_t>(options.seed)));
    root_.set("options", std::move(opts));
    summary_ = Json::object();
    tables_ = Json::object();
  }

  void add_scalar(const std::string& key, double value) {
    summary_.set(key, Json::number(value));
  }
  void add_count(const std::string& key, std::uint64_t value) {
    summary_.set(key, Json::integer(static_cast<std::int64_t>(value)));
  }

  void add_table(const std::string& name, const Table& table) {
    Json t = Json::object();
    Json header = Json::array();
    for (const std::string& cell : table.header())
      header.push_back(Json::string(cell));
    t.set("header", std::move(header));
    Json rows = Json::array();
    for (const auto& row : table.rows()) {
      Json r = Json::array();
      for (const std::string& cell : row) r.push_back(Json::string(cell));
      rows.push_back(std::move(r));
    }
    t.set("rows", std::move(rows));
    tables_.set(name, std::move(t));
  }

  /// Writes to the path implied by the options ("-" disables; empty
  /// selects "<bench>.bench.json"). Returns false on I/O failure.
  bool write(const BenchOptions& options) {
    if (options.bench_json == "-") return true;
    const std::string path = options.bench_json.empty()
                                 ? bench_ + ".bench.json"
                                 : options.bench_json;
    root_.set("summary", summary_);
    root_.set("tables", tables_);
    std::ofstream out(path);
    if (!out) return false;
    out << root_.dump_pretty() << '\n';
    if (out) std::cout << "\nwrote " << path << '\n';
    return static_cast<bool>(out);
  }

 private:
  std::string bench_;
  Json root_;
  Json summary_;
  Json tables_;
};

inline void print_table(const std::string& title, const Table& table,
                        const BenchOptions& options,
                        const std::string& csv_name) {
  std::cout << "\n## " << title << "\n\n" << table.to_string();
  if (!options.csv_prefix.empty())
    table.write_csv(options.csv_prefix + csv_name + ".csv");
  if (!options.json_prefix.empty())
    table.write_json(options.json_prefix + csv_name + ".json");
}

/// Population factory for a workload kind under the bench options.
inline std::function<Population(std::uint64_t)> population_factory(
    WorkloadKind kind, std::size_t peers) {
  return [kind, peers](std::uint64_t seed) {
    WorkloadParams params;
    params.peers = peers;
    params.seed = seed;
    return generate_workload(kind, params);
  };
}

}  // namespace lagover::bench
