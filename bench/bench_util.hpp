// Shared helpers for the bench binaries: standard flag handling, the
// paper's default experiment parameters, and table printing.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "metrics/experiment.hpp"
#include "workload/constraints.hpp"

namespace lagover::bench {

/// Flags every bench accepts:
///   --peers N       population size (default 120, the paper's)
///   --trials N      repetitions per cell (default 5, paper Section 5.1)
///   --max-rounds N  convergence budget before reporting DNC
///   --seed N        base seed
///   --csv PREFIX    also write each table as PREFIX<table>.csv
///   --json PREFIX   also write each table as PREFIX<table>.json
struct BenchOptions {
  std::size_t peers = 120;
  int trials = 5;
  Round max_rounds = 3000;
  std::uint64_t seed = 1;
  std::string csv_prefix;
  std::string json_prefix;

  static BenchOptions parse(int argc, char** argv) {
    const Flags flags(argc, argv);
    BenchOptions options;
    options.peers =
        static_cast<std::size_t>(flags.get_int("peers", 120));
    options.trials = static_cast<int>(flags.get_int("trials", 5));
    options.max_rounds =
        static_cast<Round>(flags.get_int("max-rounds", 3000));
    options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    options.csv_prefix = flags.get_string("csv", "");
    options.json_prefix = flags.get_string("json", "");
    return options;
  }
};

inline void print_table(const std::string& title, const Table& table,
                        const BenchOptions& options,
                        const std::string& csv_name) {
  std::cout << "\n## " << title << "\n\n" << table.to_string();
  if (!options.csv_prefix.empty())
    table.write_csv(options.csv_prefix + csv_name + ".csv");
  if (!options.json_prefix.empty())
    table.write_json(options.json_prefix + csv_name + ".json");
}

/// Population factory for a workload kind under the bench options.
inline std::function<Population(std::uint64_t)> population_factory(
    WorkloadKind kind, std::size_t peers) {
  return [kind, peers](std::uint64_t seed) {
    WorkloadParams params;
    params.peers = peers;
    params.seed = seed;
    return generate_workload(kind, params);
  };
}

}  // namespace lagover::bench
