// Extension: dissemination under message loss. Sweeps the per-push loss
// rate with anti-entropy recovery on/off and reports delivery ratio and
// staleness-budget violations — the robustness margin a deployed
// LagOver client needs beyond the paper's lossless model.
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/engine.hpp"
#include "core/snapshot.hpp"
#include "feed/reliability.hpp"

namespace lagover {
namespace {

int run(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::BenchJson json("bench_reliability", options);
  bench::TelemetryExport telemetry(options);
  std::cout << "# lossy dissemination (hybrid-converged overlay, "
            << options.peers << " peers, BiUnCorr, 300 time units)\n";

  WorkloadParams params;
  params.peers = options.peers;
  params.seed = options.seed;
  EngineConfig config;
  config.seed = options.seed;
  Engine engine(generate_workload(WorkloadKind::kBiUnCorr, params), config);
  if (!engine.run_until_converged(options.max_rounds).has_value()) {
    std::cout << "construction did not converge; aborting\n";
    return 1;
  }
  if (telemetry.recorder() != nullptr)
    telemetry.recorder()->note_snapshot(0.0, to_snapshot(engine.overlay()));

  double worst_ratio_recovered = 1.0;
  std::uint64_t total_late = 0;
  double sample_t = 0.0;
  Table table({"push loss", "recovery", "delivery ratio", "late deliveries",
               "recovered items", "repair pulls"});
  for (double loss : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    for (bool recovery : {false, true}) {
      feed::LossyConfig lossy;
      lossy.base.seed = options.seed;
      lossy.push_loss = loss;
      lossy.enable_recovery = recovery;
      const auto report =
          feed::run_lossy_dissemination(engine.overlay(), lossy, 300.0);
      if (recovery)
        worst_ratio_recovered =
            std::min(worst_ratio_recovered, report.delivery_ratio);
      total_late += report.late_deliveries;
      telemetry.sample(sample_t += 1.0);
      table.add_row({format_double(loss, 2), recovery ? "on" : "off",
                     format_double(report.delivery_ratio * 100.0, 2) + "%",
                     std::to_string(report.late_deliveries),
                     std::to_string(report.recovered_deliveries),
                     std::to_string(report.recovery_pulls)});
    }
  }
  bench::print_table("delivery under loss, with and without anti-entropy",
                     table, options, "reliability");
  std::cout << "\nshape: without recovery the delivery ratio decays "
               "roughly like (1-loss)^depth; with recovery completeness "
               "returns to ~100% at the cost of late deliveries.\n";
  json.add_table("reliability", table);
  json.add_scalar("worst_delivery_ratio_with_recovery",
                  worst_ratio_recovered);
  json.add_count("total_late_deliveries", total_late);
  telemetry.finish(json);
  if (!json.write(options)) return 1;
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
