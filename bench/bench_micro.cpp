// Micro-benchmarks (google-benchmark): costs of the core data-structure
// operations, oracle sampling, engine rounds, the exact feasibility
// checker, and Chord lookups. These bound how large a simulated
// population the harness can handle.
//
// Unlike the sweep benches this binary is driven by google-benchmark's
// own flags (--benchmark_filter etc.); the custom main below still
// parses the shared bench flags afterwards so the run emits the same
// "lagover.bench.v1" summary as every other bench, with each
// benchmark's per-iteration real time (normalized to nanoseconds) as a
// headline scalar.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "core/engine.hpp"
#include "core/optimizer.hpp"
#include "core/snapshot.hpp"
#include "core/sufficiency.hpp"
#include "core/validator.hpp"
#include "dht/chord.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

Population rand_population(std::size_t peers, std::uint64_t seed = 1) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  return generate_workload(WorkloadKind::kRand, params);
}

void BM_OverlayAttachDetach(benchmark::State& state) {
  Overlay overlay(rand_population(static_cast<std::size_t>(state.range(0))));
  // Find a hosting pair once.
  NodeId parent = kNoNode;
  for (NodeId id = 1; id < overlay.node_count(); ++id)
    if (overlay.fanout_of(id) > 0) {
      parent = id;
      break;
    }
  const NodeId child = parent == 1 ? 2 : 1;
  for (auto _ : state) {
    overlay.attach(child, parent);
    overlay.detach(child);
  }
}
BENCHMARK(BM_OverlayAttachDetach)->Arg(120)->Arg(960);

void BM_OverlayDelayAt(benchmark::State& state) {
  // A maximal chain: delay_at cost is proportional to depth.
  Population p;
  p.source_fanout = 1;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (NodeId id = 1; id <= n; ++id)
    p.consumers.push_back(
        NodeSpec{id, Constraints{1, static_cast<Delay>(n)}});
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  for (NodeId id = 2; id <= n; ++id) overlay.attach(id, id - 1);
  const auto leaf = static_cast<NodeId>(n);
  for (auto _ : state) benchmark::DoNotOptimize(overlay.delay_at(leaf));
}
BENCHMARK(BM_OverlayDelayAt)->Arg(16)->Arg(128);

void BM_OracleSample(benchmark::State& state) {
  Overlay overlay(rand_population(static_cast<std::size_t>(state.range(0))));
  auto oracle = make_oracle(OracleKind::kRandomDelay);
  Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(oracle->sample(1, overlay, rng));
}
BENCHMARK(BM_OracleSample)->Arg(120)->Arg(960);

void BM_EngineRound(benchmark::State& state) {
  EngineConfig config;
  config.seed = 3;
  Engine engine(rand_population(static_cast<std::size_t>(state.range(0))),
                config);
  for (auto _ : state) benchmark::DoNotOptimize(engine.run_round());
}
BENCHMARK(BM_EngineRound)->Arg(120)->Arg(960);

void BM_FullConstruction(benchmark::State& state) {
  const Population population =
      rand_population(static_cast<std::size_t>(state.range(0)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    EngineConfig config;
    config.seed = ++seed;
    Engine engine(population, config);
    benchmark::DoNotOptimize(engine.run_until_converged(5000));
  }
}
BENCHMARK(BM_FullConstruction)->Arg(120)->Unit(benchmark::kMillisecond);

void BM_SufficiencyCondition(benchmark::State& state) {
  const Population population =
      rand_population(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(sufficiency_condition(population));
}
BENCHMARK(BM_SufficiencyCondition)->Arg(120)->Arg(960);

void BM_ExactFeasibility(benchmark::State& state) {
  const Population population =
      rand_population(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(feasible_depths(population));
}
BENCHMARK(BM_ExactFeasibility)->Arg(120)->Arg(960);

void BM_SnapshotRoundTrip(benchmark::State& state) {
  EngineConfig config;
  config.seed = 5;
  Engine engine(rand_population(static_cast<std::size_t>(state.range(0))),
                config);
  engine.run_until_converged(5000);
  for (auto _ : state)
    benchmark::DoNotOptimize(from_snapshot(to_snapshot(engine.overlay())));
}
BENCHMARK(BM_SnapshotRoundTrip)->Arg(120)->Arg(960);

void BM_ValidateOverlay(benchmark::State& state) {
  EngineConfig config;
  config.seed = 7;
  Engine engine(rand_population(static_cast<std::size_t>(state.range(0))),
                config);
  engine.run_until_converged(5000);
  for (auto _ : state)
    benchmark::DoNotOptimize(validate_overlay(engine.overlay()));
}
BENCHMARK(BM_ValidateOverlay)->Arg(120)->Arg(960);

void BM_OptimizeShallowCapacity(benchmark::State& state) {
  const Population population =
      rand_population(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    EngineConfig config;
    config.seed = 9;
    Engine engine(population, config);
    engine.run_until_converged(5000);
    state.ResumeTiming();
    benchmark::DoNotOptimize(optimize_shallow_capacity(engine.overlay()));
  }
}
BENCHMARK(BM_OptimizeShallowCapacity)->Arg(120)->Unit(benchmark::kMillisecond);

void BM_ChordLookup(benchmark::State& state) {
  dht::ChordRing ring(static_cast<std::size_t>(state.range(0)),
                      dht::ChordConfig{}, 5);
  ring.run_until_stable(500.0);
  ring.simulator().run_until(ring.simulator().now() + 200.0);
  std::uint64_t key = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(ring.lookup_sync(0, dht::hash_u64(++key)));
}
BENCHMARK(BM_ChordLookup)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

/// Console output as usual, plus every iteration-level run captured so
/// main can emit them as bench-JSON scalars.
class CapturingReporter final : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double real_ns;
    double cpu_ns;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      // GetAdjustedRealTime is in the run's own display unit; divide the
      // unit multiplier back out to get seconds, then scale to ns so the
      // JSON is unit-uniform regardless of each benchmark's Unit().
      const double to_ns =
          1e9 / benchmark::GetTimeUnitMultiplier(run.time_unit);
      captured.push_back({run.benchmark_name(),
                          run.GetAdjustedRealTime() * to_ns,
                          run.GetAdjustedCPUTime() * to_ns});
    }
  }

  std::vector<Captured> captured;
};

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) {
  // google-benchmark consumes its --benchmark_* flags; the shared bench
  // flags (--bench-json, --telemetry, ...) are whatever remains.
  benchmark::Initialize(&argc, argv);
  const auto options = lagover::bench::BenchOptions::parse(argc, argv);
  lagover::bench::BenchJson bench_json("bench_micro", options);
  lagover::bench::TelemetryExport telemetry_export(options);

  lagover::CapturingReporter reporter;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  for (const auto& run : reporter.captured) {
    bench_json.add_scalar(run.name + ".real_ns", run.real_ns);
    bench_json.add_scalar(run.name + ".cpu_ns", run.cpu_ns);
    // With --perf the same scalars land in the "lagover.perf.v1"
    // section under "micro", so perf_compare.py sees one schema.
    if (telemetry_export.perf() != nullptr)
      telemetry_export.perf()->note_micro(run.name, run.real_ns,
                                          run.cpu_ns);
  }
  bench_json.add_count("benchmarks_run", ran);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  return ran == 0 ? 1 : 0;
}
