// Figure 2 reproduction: variation in convergence of the Greedy
// algorithm (Oracle Random-Delay) without churn. For each topological
// constraint the paper plots per-trial construction latencies showing
// high variance; we print per-trial values, order statistics, and an
// ASCII histogram. The paper's takeaway — repeat 5x and use the median —
// is exactly why the other benches do so.
#include <cstdint>
#include <iostream>

#include "bench/bench_util.hpp"
#include "stats/histogram.hpp"

namespace lagover {
namespace {

int run(int argc, char** argv) {
  auto options = bench::BenchOptions::parse(argc, argv);
  // The distribution needs more than 5 points to be visible.
  if (options.trials == 5) options.trials = 20;

  std::cout << "# Figure 2 — variation in convergence of greedy "
               "(Oracle Random-Delay, "
            << options.peers << " peers, no churn)\n";

  bench::BenchJson bench_json("bench_fig2_convergence_variation", options);
  bench::TelemetryExport telemetry_export(options);
  double cell = 0.0;

  Table table({"workload", "trials", "min", "q25", "median", "q75", "max",
               "stddev"});
  Sample all;
  Sample tracker_all;
  std::uint64_t tracker_dnc = 0;
  for (auto kind : kAllWorkloads) {
    // With --health, slice this cell's runs out of the observatory to
    // embed the paper's Fig 2 quantity — the tracker-latched
    // convergence round — first-class per workload.
    const std::size_t runs_before =
        telemetry_export.health() != nullptr
            ? telemetry_export.health()->completed_run_count()
            : 0;
    ExperimentSpec spec;
    spec.population = bench::population_factory(kind, options.peers);
    spec.config.algorithm = AlgorithmKind::kGreedy;
    spec.config.oracle = OracleKind::kRandomDelay;
    spec.trials = options.trials;
    spec.max_rounds = options.max_rounds;
    spec.base_seed = options.seed;
    const auto result = run_experiment(spec);

    const Sample& rounds = result.convergence_rounds;
    table.add_row({to_string(kind), std::to_string(options.trials),
                   format_double(rounds.min(), 0),
                   format_double(rounds.quantile(0.25), 0),
                   format_double(rounds.median(), 0),
                   format_double(rounds.quantile(0.75), 0),
                   format_double(rounds.max(), 0),
                   format_double(rounds.stddev(), 1)});
    all.add_all(rounds.values());
    bench_json.add_scalar(std::string(to_string(kind)) + ".median_rounds",
                          rounds.median());
    bench_json.add_scalar(std::string(to_string(kind)) + ".stddev_rounds",
                          rounds.stddev());
    if (auto* health = telemetry_export.health()) {
      Sample tracked;
      const auto completed = health->completed_runs();
      for (std::size_t i = runs_before; i < completed.size(); ++i) {
        if (completed[i].convergence_round < 0) {
          ++tracker_dnc;
          continue;
        }
        const auto round = static_cast<double>(completed[i].convergence_round);
        tracked.add(round);
        tracker_all.add(round);
      }
      if (tracked.size() > 0)
        bench_json.add_scalar(
            std::string(to_string(kind)) + ".convergence_round",
            tracked.median());
    }
    // Coarse per-cell metric snapshots (these benches drive engines
    // through run_experiment and have no per-round hook).
    telemetry_export.sample(cell += 1.0);

    std::cout << "\n" << to_string(kind) << " per-trial rounds:";
    for (double v : rounds.values()) std::cout << ' ' << v;
    std::cout << '\n';
  }
  bench::print_table("convergence-time spread per workload", table, options,
                     "fig2");

  Histogram histogram(0.0, all.max() + 1.0, 12);
  for (double v : all.values()) histogram.add(v);
  std::cout << "\npooled convergence-time histogram (all workloads):\n"
            << histogram.to_string() << '\n';

  bench_json.add_scalar("pooled_median_rounds", all.median());
  bench_json.add_scalar("pooled_stddev_rounds", all.stddev());
  if (telemetry_export.health() != nullptr) {
    if (tracker_all.size() > 0)
      bench_json.add_scalar("convergence_round", tracker_all.median());
    bench_json.add_count("convergence_dnc", tracker_dnc);
  }
  bench_json.add_table("fig2", table);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
