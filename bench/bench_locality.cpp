// Extension (paper Section 7): locality-aware LagOver construction.
// Sweeps the locality bias of the Oracle and reports the fraction of
// cross-locality overlay edges versus construction latency — the
// trade-off behind "clients within same domain, ISP or timezone forming
// the overlay may substantially improve the global performance".
#include <iostream>
#include <memory>

#include "bench/bench_util.hpp"
#include "core/engine.hpp"
#include "core/locality.hpp"

namespace lagover {
namespace {

int run(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  constexpr int kBuckets = 4;
  std::cout << "# locality-aware construction (hybrid, Random-Delay base, "
            << options.peers << " peers, " << kBuckets
            << " localities, median of " << options.trials << ")\n";

  bench::BenchJson bench_json("bench_locality", options);
  bench::TelemetryExport telemetry_export(options);

  Table table({"locality bias", "median rounds", "cross-locality edges",
               "local samples / total"});
  // Headline: the traffic-locality win (cross-edge fraction at zero vs
  // high bias) and whether construction latency paid for it.
  double cross_at_zero = -1.0;
  double cross_at_high = -1.0;
  double rounds_at_zero = -1.0;
  double rounds_at_high = -1.0;
  for (double bias : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    Sample rounds;
    Sample cross;
    std::uint64_t local_samples = 0;
    std::uint64_t total_samples = 0;
    int failures = 0;
    for (int trial = 0; trial < options.trials; ++trial) {
      const std::uint64_t seed =
          options.seed + static_cast<std::uint64_t>(trial) * 7919;
      WorkloadParams params;
      params.peers = options.peers;
      params.seed = seed;
      const Population population =
          generate_workload(WorkloadKind::kBiUnCorr, params);
      const LocalityMap localities =
          random_localities(options.peers, kBuckets, seed ^ 0x10CA1ULL);

      EngineConfig config;
      config.algorithm = AlgorithmKind::kHybrid;
      config.seed = seed;
      Engine engine(population, config);
      auto oracle = std::make_unique<LocalityBiasedOracle>(
          OracleKind::kRandomDelay, localities, bias);
      const auto* raw = oracle.get();
      engine.set_oracle(std::move(oracle));
      const auto converged = engine.run_until_converged(options.max_rounds);
      if (!converged.has_value()) {
        ++failures;
        continue;
      }
      rounds.add(static_cast<double>(*converged));
      cross.add(
          compute_locality_metrics(engine.overlay(), localities)
              .cross_fraction);
      local_samples += raw->local_samples();
      total_samples += raw->local_samples() + raw->global_samples();
    }
    table.add_row(
        {format_double(bias, 2),
         rounds.empty()
             ? "DNC"
             : format_double(rounds.median(), 0) +
                   (failures > 0 ? " (" +
                                       std::to_string(options.trials -
                                                      failures) +
                                       "/" + std::to_string(options.trials) +
                                       ")"
                                 : ""),
         cross.empty() ? "-" : format_double(cross.median() * 100.0, 1) + "%",
         total_samples == 0
             ? "-"
             : format_double(100.0 * static_cast<double>(local_samples) /
                                 static_cast<double>(total_samples),
                             1) +
                   "%"});
    if (bias == 0.0) {
      cross_at_zero = cross.empty() ? -1.0 : cross.median();
      rounds_at_zero = rounds.empty() ? -1.0 : rounds.median();
    }
    if (bias == 0.9) {
      cross_at_high = cross.empty() ? -1.0 : cross.median();
      rounds_at_high = rounds.empty() ? -1.0 : rounds.median();
    }
    telemetry_export.sample(bias);
  }
  bench::print_table("cross-locality edges vs bias", table, options,
                     "locality");
  bench_json.add_scalar("cross_fraction_bias0", cross_at_zero);
  bench_json.add_scalar("cross_fraction_bias09", cross_at_high);
  bench_json.add_scalar("median_rounds_bias0", rounds_at_zero);
  bench_json.add_scalar("median_rounds_bias09", rounds_at_high);
  bench_json.add_table("locality", table);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  std::cout << "\nshape: cross-locality traffic falls sharply with bias "
               "while construction latency stays essentially flat (the "
               "global fallback prevents starvation).\n";
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
