// Extension (paper Section 7): multiple feeds over intersecting
// consumers with shared upload budgets. Sweeps the number of feeds each
// consumer subscribes to and compares budget-split policies; reports
// per-feed and fully-served convergence.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "core/multi_feed.hpp"

namespace lagover {
namespace {

std::vector<MultiConsumerSpec> make_consumers(std::size_t n,
                                              std::size_t feeds,
                                              std::size_t subs_per_consumer,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MultiConsumerSpec> consumers;
  for (NodeId id = 1; id <= n; ++id) {
    MultiConsumerSpec spec;
    spec.id = id;
    // Upload budget scales with subscription count so heavier consumers
    // also contribute more (the paper's collaborative-peers assumption).
    spec.total_fanout =
        static_cast<int>(rng.uniform_int(1, 3)) *
        static_cast<int>(subs_per_consumer);
    // Skewed popularity (feed 0 hottest) so the demand-weighted policy
    // actually has a gradient to exploit.
    const auto first = rng.bernoulli(0.5)
                           ? 0
                           : static_cast<std::size_t>(rng.next_below(feeds));
    for (std::size_t s = 0; s < subs_per_consumer; ++s)
      spec.subscriptions.push_back(
          {(first + s) % feeds,
           static_cast<Delay>(rng.uniform_int(3, 8))});
    consumers.push_back(spec);
  }
  return consumers;
}

int run(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::BenchJson json("bench_multi_feed", options);
  bench::TelemetryExport telemetry(options);
  constexpr std::size_t kFeeds = 4;
  std::cout << "# multi-feed LagOvers with shared upload budgets ("
            << options.peers << " consumers, " << kFeeds
            << " feeds, median of " << options.trials << ")\n";

  double worst_fully_served = 1.0;
  double sample_t = 0.0;
  Table table({"subs/consumer", "budget policy", "median rounds",
               "fully served", "per-feed satisfied (median)"});
  for (std::size_t subs : {1u, 2u, 4u}) {
    for (auto policy : {BudgetPolicy::kEven, BudgetPolicy::kDemandWeighted}) {
      Sample rounds;
      Sample served;
      Sample per_feed;
      int failures = 0;
      for (int trial = 0; trial < options.trials; ++trial) {
        const std::uint64_t seed =
            options.seed + static_cast<std::uint64_t>(trial) * 7919;
        MultiFeedConfig config;
        config.policy = policy;
        config.engine.seed = seed;
        MultiFeedSystem system(
            std::vector<int>(kFeeds, 6),
            make_consumers(options.peers, kFeeds, subs, seed), config);
        const auto converged =
            system.run_until_converged(options.max_rounds);
        system.audit_budgets();
        const auto stats = system.stats();
        served.add(stats.fully_served_fraction);
        for (double fraction : stats.per_feed_satisfied)
          per_feed.add(fraction);
        if (converged.has_value())
          rounds.add(static_cast<double>(*converged));
        else
          ++failures;
      }
      worst_fully_served = std::min(worst_fully_served, served.median());
      telemetry.sample(sample_t += 1.0);
      table.add_row(
          {std::to_string(subs),
           policy == BudgetPolicy::kEven ? "even" : "demand-weighted",
           rounds.empty() ? "DNC"
                          : format_double(rounds.median(), 0) +
                                (failures > 0
                                     ? " (" +
                                           std::to_string(options.trials -
                                                          failures) +
                                           "/" +
                                           std::to_string(options.trials) +
                                           ")"
                                     : ""),
           format_double(served.median() * 100.0, 1) + "%",
           format_double(per_feed.median() * 100.0, 1) + "%"});
    }
  }
  bench::print_table("shared-budget multi-feed construction", table, options,
                     "multi_feed");
  json.add_table("multi_feed", table);
  json.add_scalar("worst_fully_served_fraction", worst_fully_served);
  telemetry.finish(json);
  if (!json.write(options)) return 1;
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
