// Extension: flash-crowd absorption (the Boston Globe scenario that
// opens the paper — a popular feed suddenly gaining readers). A
// fraction of the population joins an already-converged LagOver all at
// once; we measure absorption time with and without the shallow-slack
// optimizer (core/optimizer.hpp).
#include <iostream>
#include <memory>

#include "bench/bench_util.hpp"
#include "core/engine.hpp"
#include "core/optimizer.hpp"
#include "workload/churn.hpp"

namespace lagover {
namespace {

int run(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::BenchJson json("bench_flash_crowd", options);
  bench::TelemetryExport telemetry(options);
  std::cout << "# flash-crowd absorption (hybrid, BiUnCorr, "
            << options.peers << " peers total, median of " << options.trials
            << ")\n";

  double worst_absorption = 0.0;
  double sample_t = 0.0;
  Table table({"crowd size", "optimizer", "shallow free slots (depth<=2)",
               "median absorption rounds"});
  for (double crowd_fraction : {0.1, 0.3, 0.5}) {
    for (bool optimize : {false, true}) {
      Sample absorption;
      Sample slots;
      int failures = 0;
      for (int trial = 0; trial < options.trials; ++trial) {
        const std::uint64_t seed =
            options.seed + static_cast<std::uint64_t>(trial) * 7919;
        WorkloadParams params;
        params.peers = options.peers;
        params.seed = seed;
        EngineConfig config;
        config.seed = seed;
        Engine engine(generate_workload(WorkloadKind::kBiUnCorr, params),
                      config);
        const auto crowd = static_cast<NodeId>(
            static_cast<double>(options.peers) * crowd_fraction);
        for (NodeId id = static_cast<NodeId>(options.peers) - crowd + 1;
             id <= options.peers; ++id)
          engine.overlay().set_offline(id);
        if (!engine.run_until_converged(options.max_rounds).has_value()) {
          ++failures;
          continue;
        }
        if (optimize) optimize_shallow_capacity(engine.overlay());
        slots.add(static_cast<double>(
            shallow_free_slots(engine.overlay(), 2)));
        engine.set_churn(
            std::make_unique<FlashCrowdChurn>(engine.round() + 1));
        const Round before = engine.round();
        {
          const telemetry::PerfPhase perf_crowd("construction");
          engine.run_round();  // the crowd arrives here
        }
        const auto converged = engine.run_until_converged(options.max_rounds);
        if (!converged.has_value()) {
          ++failures;
          continue;
        }
        absorption.add(static_cast<double>(*converged - before));
      }
      if (!absorption.empty())
        worst_absorption = std::max(worst_absorption, absorption.median());
      telemetry.sample(sample_t += 1.0);
      table.add_row(
          {format_double(crowd_fraction * 100.0, 0) + "%",
           optimize ? "on" : "off",
           slots.empty() ? "-" : format_double(slots.median(), 0),
           absorption.empty()
               ? "DNC"
               : format_double(absorption.median(), 0) +
                     (failures > 0
                          ? " (" +
                                std::to_string(options.trials - failures) +
                                "/" + std::to_string(options.trials) + ")"
                          : "")});
    }
  }
  bench::print_table("flash-crowd absorption vs shallow capacity", table,
                     options, "flash_crowd");
  std::cout << "\nshape: absorption is fast (a handful of rounds) and "
               "scales mildly with crowd size. Negative result worth "
               "recording: the slack optimizer does free shallow slots "
               "but does NOT speed absorption — the construction "
               "algorithms' orphaning-displacement move already reclaims "
               "shallow capacity on demand, so pre-freeing it buys "
               "nothing.\n";
  json.add_table("flash_crowd", table);
  json.add_scalar("worst_median_absorption_rounds", worst_absorption);
  telemetry.finish(json);
  if (!json.write(options)) return 1;
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
