// Byzantine robustness sweep (ROADMAP "meaner worlds"): delay-liar
// fractions {0, 5%, 20%} with the defense ladder off vs on, under both
// construction algorithms, plus a mixed-adversary cell (liars +
// fanout-liars + free-riders + flappers). Each trial constructs the
// overlay event-driven (Oracle Random-Delay by default), then runs a
// loss-free feed phase over the final tree; the headline metric is the
// deadline-miss rate — the fraction of expected deliveries that never
// arrived or arrived past the consumer's staleness budget (delay-liars
// manufacture exactly such late chains).
//
// Expected shape: undefended miss rate grows with the liar fraction
// (graceless collapse); with defenses on, child-side delay verification
// and the Oracle plausibility filter quarantine the liars and the
// defended 5% cell stays within 2x the fault-free baseline.
#include <algorithm>
#include <iostream>
#include <memory>

#include "bench/bench_util.hpp"
#include "common/flags.hpp"
#include "core/async_engine.hpp"
#include "fault/byzantine.hpp"
#include "feed/reliability.hpp"
#include "stats/sample.hpp"

namespace lagover {
namespace {

constexpr double kLiarFractions[] = {0.0, 0.05, 0.2};
constexpr double kFeedDuration = 120.0;

struct CellResult {
  int converged = 0;
  Sample satisfied;
  Sample honest_satisfied;
  Sample miss_rate;
  std::uint64_t quarantines = 0;
  std::uint64_t blacklists = 0;
  std::uint64_t implausible_skips = 0;
  std::uint64_t quarantine_detaches = 0;
  std::uint64_t audit_violations = 0;
};

/// Satisfied fraction over the honest consumers only — the adversary's
/// own nodes "suffering" is not damage worth counting.
double honest_satisfied_fraction(const Overlay& overlay,
                                 const fault::AdversaryBook* book) {
  std::size_t honest = 0;
  std::size_t satisfied = 0;
  for (NodeId id = 1; id < overlay.node_count(); ++id) {
    if (!overlay.online(id)) continue;
    if (book != nullptr && book->role(id) != fault::AdversaryClass::kHonest)
      continue;
    ++honest;
    if (overlay.satisfied(id)) ++satisfied;
  }
  return honest == 0 ? 1.0
                     : static_cast<double>(satisfied) /
                           static_cast<double>(honest);
}

CellResult run_cell(const fault::ByzantineSpec& spec, bool defended,
                    AlgorithmKind algorithm, OracleKind oracle, double horizon,
                    const bench::BenchOptions& options,
                    bench::TelemetryExport& telemetry_export) {
  CellResult cell;
  for (int trial = 0; trial < options.trials; ++trial) {
    const std::uint64_t seed =
        options.seed + static_cast<std::uint64_t>(trial) * 7919;
    WorkloadParams params;
    params.peers = options.peers;
    params.seed = seed;
    AsyncConfig config;
    config.algorithm = algorithm;
    config.oracle = oracle;
    config.seed = seed;
    std::shared_ptr<fault::AdversaryBook> book;
    if (!spec.empty()) {
      book = std::make_shared<fault::AdversaryBook>(spec, options.peers + 1);
      config.adversary = book;
    }
    config.defense.enabled = defended;
    AsyncEngine engine(generate_workload(WorkloadKind::kBiUnCorr, params),
                       config);
#ifdef LAGOVER_AUDIT
    engine.audit_bus().subscribe([](const InvariantViolation& v) {
      std::cerr << "AUDIT " << to_string(v.invariant) << " cause=" << v.cause
                << " node=" << v.node << " " << v.detail << "\n";
    });
#endif
    engine.set_sampler(1.0, [&](SimTime t) { telemetry_export.sample(t); });
    engine.run_for(horizon);
    cell.audit_violations += engine.audit_violations();
    if (engine.overlay().all_satisfied()) ++cell.converged;
    cell.satisfied.add(engine.overlay().satisfied_fraction());
    cell.honest_satisfied.add(
        honest_satisfied_fraction(engine.overlay(), book.get()));
    const health::SuspicionBook& suspicion = engine.suspicion();
    cell.quarantines += suspicion.quarantines();
    cell.blacklists += suspicion.blacklists();
    cell.quarantine_detaches += engine.quarantine_detaches();
    if (const fault::ByzantineOracle* wrapped = engine.byzantine_oracle())
      cell.implausible_skips += wrapped->implausible_skips();

    // Feed phase over the final overlay: loss-free pushes, no repair —
    // every miss is structural (a late liar chain, a withheld relay, or
    // an orphaned consumer that receives nothing), not transport noise.
    feed::LossyConfig feed_config;
    feed_config.base.seed = seed;
    feed_config.base.source.seed = seed;
    feed_config.push_loss = 0.0;
    feed_config.enable_recovery = false;
    feed_config.adversary = book;
    const feed::LossyReport report = feed::run_lossy_dissemination(
        engine.overlay(), feed_config, kFeedDuration);
    // Deadline-miss rate over every ONLINE consumer (the report's
    // expected set covers only connected ones — but a consumer the
    // adversary kept orphaned misses every deadline, and not counting
    // it would let "disconnect the victims" read as zero damage).
    std::size_t online = 0;
    for (NodeId id = 1; id < engine.overlay().node_count(); ++id)
      if (engine.overlay().online(id)) ++online;
    const double counted_items =
        report.connected_consumers == 0
            ? 0.0
            : static_cast<double>(report.expected_deliveries) /
                  static_cast<double>(report.connected_consumers);
    const double expected_all = counted_items * static_cast<double>(online);
    // delivery_ratio already excludes the in-flight tail window, so
    // delivered-in-window = ratio x expected; subtract the late ones.
    const double on_time =
        report.delivery_ratio *
            static_cast<double>(report.expected_deliveries) -
        static_cast<double>(report.late_deliveries);
    cell.miss_rate.add(
        expected_all <= 0.0
            ? 0.0
            : std::clamp(1.0 - on_time / expected_all, 0.0, 1.0));
  }
  return cell;
}

void add_cell_row(Table& table, const std::string& mix, bool defended,
                  AlgorithmKind algorithm, const CellResult& cell,
                  const bench::BenchOptions& options) {
  table.add_row(
      {to_string(algorithm), mix, defended ? "on" : "off",
       std::to_string(cell.converged) + "/" + std::to_string(options.trials),
       format_double(cell.satisfied.median(), 3),
       format_double(cell.honest_satisfied.median(), 3),
       format_double(cell.miss_rate.median(), 3),
       std::to_string(cell.quarantines), std::to_string(cell.blacklists),
       std::to_string(cell.implausible_skips),
       std::to_string(cell.quarantine_detaches)});
}

int run(int argc, char** argv) {
  auto options = bench::BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  OracleKind oracle = OracleKind::kRandomDelay;
  const std::string oracle_name = flags.get_string("oracle", "random_delay");
  if (oracle_name == "random") oracle = OracleKind::kRandom;
  else if (oracle_name == "random_capacity")
    oracle = OracleKind::kRandomCapacity;
  else if (oracle_name == "random_delay_capacity")
    oracle = OracleKind::kRandomDelayCapacity;
  else if (oracle_name != "random_delay") {
    std::cerr << "unknown --oracle " << oracle_name << "\n";
    return 2;
  }
  const double horizon = std::clamp(
      static_cast<double>(options.max_rounds), 60.0, 600.0);

  std::cout << "# Byzantine sweep — delay-liar fractions {0, 5%, 20%}, "
               "defenses off vs on; "
            << options.peers << " peers, " << options.trials
            << " trials per cell, horizon " << horizon << ", Oracle "
            << to_string(oracle) << "\n";

  bench::BenchJson bench_json("bench_byzantine", options);
  bench::TelemetryExport telemetry_export(options);
  std::uint64_t audit_violations = 0;

  Table table({"algorithm", "adversary", "defenses", "converged",
               "satisfied", "honest satisfied", "miss rate", "quarantines",
               "blacklists", "implausible", "detaches"});
  double miss_baseline = -1.0;
  double miss_defended_5 = -1.0;
  double miss_undefended_5 = -1.0;
  double miss_undefended_20 = -1.0;
  for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
    for (double fraction : kLiarFractions) {
      fault::ByzantineSpec spec;
      spec.delay_liar_fraction = fraction;
      for (bool defended : {false, true}) {
        // The fault-free cell is identical defended/undefended (the
        // defense ladder is inert without an adversary); run it once.
        if (fraction == 0.0 && defended) continue;
        const CellResult cell =
            run_cell(spec, defended, algorithm, oracle, horizon, options,
                     telemetry_export);
        audit_violations += cell.audit_violations;
        const std::string mix =
            fraction == 0.0 ? "none"
                            : format_double(fraction * 100.0, 0) +
                                  "% delay-liars";
        add_cell_row(table, mix, defended, algorithm, cell, options);
        if (algorithm == AlgorithmKind::kHybrid) {
          if (fraction == 0.0) miss_baseline = cell.miss_rate.median();
          if (fraction == 0.05 && defended)
            miss_defended_5 = cell.miss_rate.median();
          if (fraction == 0.05 && !defended)
            miss_undefended_5 = cell.miss_rate.median();
          if (fraction == 0.2 && !defended)
            miss_undefended_20 = cell.miss_rate.median();
        }
      }
    }
  }
  bench::print_table("delay-liar sweep — deadline-miss rate (median)", table,
                     options, "byzantine");

  // Mixed adversary: every class at once (5% each).
  Table mixed_table({"algorithm", "adversary", "defenses", "converged",
                     "satisfied", "honest satisfied", "miss rate",
                     "quarantines", "blacklists", "implausible", "detaches"});
  fault::ByzantineSpec mixed;
  mixed.delay_liar_fraction = 0.05;
  mixed.fanout_liar_fraction = 0.05;
  mixed.free_rider_fraction = 0.05;
  mixed.flapper_fraction = 0.05;
  for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
    for (bool defended : {false, true}) {
      const CellResult cell = run_cell(mixed, defended, algorithm, oracle,
                                       horizon, options, telemetry_export);
      audit_violations += cell.audit_violations;
      add_cell_row(mixed_table, "mixed 4x5%", defended, algorithm, cell,
                   options);
    }
  }
  bench::print_table("mixed adversary — all four classes at 5%", mixed_table,
                     options, "byzantine_mixed");

  bench_json.add_scalar("miss_rate_baseline", miss_baseline);
  bench_json.add_scalar("miss_rate_defended_5pct", miss_defended_5);
  bench_json.add_scalar("miss_rate_undefended_5pct", miss_undefended_5);
  bench_json.add_scalar("miss_rate_undefended_20pct", miss_undefended_20);
  bench_json.add_table("byzantine", table);
  bench_json.add_table("byzantine_mixed", mixed_table);
  bench_json.add_count("audit_violations", audit_violations);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
#ifdef LAGOVER_AUDIT
  if (audit_violations != 0) {
    std::cerr << "AUDIT FAILED: " << audit_violations
              << " invariant violation(s) across the sweep\n";
    return 1;
  }
  std::cout << "# audit: clean (0 violations)\n";
#endif
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
