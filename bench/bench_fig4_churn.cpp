// Figure 4 reproduction: Greedy vs Hybrid on the bimodal-correlated
// (BiCorr) workload, without churn and with the paper's churn model
// (per round: online peers leave w.p. 0.01, offline peers rejoin w.p.
// 0.2), Oracle Random-Delay, 120 peers, median of 5 trials. Expected
// shape: Hybrid outperforms Greedy both without and under churn.
#include <iostream>
#include <memory>

#include "bench/bench_util.hpp"
#include "workload/churn.hpp"

namespace lagover {
namespace {

ExperimentResult run_cell(AlgorithmKind algorithm, bool churn,
                          WorkloadKind workload,
                          const bench::BenchOptions& options) {
  ExperimentSpec spec;
  spec.population = bench::population_factory(workload, options.peers);
  spec.config.algorithm = algorithm;
  spec.config.oracle = OracleKind::kRandomDelay;
  spec.trials = options.trials;
  spec.max_rounds = options.max_rounds;
  spec.base_seed = options.seed;
  spec.record_series = true;
  if (churn) {
    spec.churn = [] { return std::make_unique<BernoulliChurn>(0.01, 0.2); };
    spec.run_full_horizon = true;  // measure steady state too
  }
  return run_experiment(spec);
}

double steady_state_fraction(const ExperimentResult& result,
                             Round max_rounds) {
  // Mean satisfied fraction over the last half of the horizon, median
  // trial by convergence-agnostic ordering (use the middle of the list).
  Sample means;
  for (const auto& trial : result.trials)
    means.add(trial.fraction_series.mean_after(
        static_cast<double>(max_rounds) / 2.0));
  return means.median();
}

int run(int argc, char** argv) {
  auto options = bench::BenchOptions::parse(argc, argv);
  // Under churn the run always lasts max_rounds; keep it affordable.
  if (options.max_rounds > 1500) options.max_rounds = 1500;

  std::cout << "# Figure 4 — Greedy vs Hybrid, bimodal correlated "
               "constraints (BiCorr), Oracle Random-Delay, "
            << options.peers << " peers, median of " << options.trials
            << "\n# churn model: p_leave=0.01, p_join=0.2 per round\n";

  bench::BenchJson bench_json("bench_fig4_churn", options);
  bench::TelemetryExport telemetry_export(options);

  Table table({"algorithm", "churn", "median rounds to full satisfaction",
               "steady-state satisfied fraction", "maintenance detaches"});
  for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
    for (bool churn : {false, true}) {
      const auto result =
          run_cell(algorithm, churn, WorkloadKind::kBiCorr, options);
      Sample detaches;
      for (const auto& trial : result.trials)
        detaches.add(static_cast<double>(trial.maintenance_detaches));
      table.add_row({to_string(algorithm), churn ? "yes" : "no",
                     format_convergence_cell(result),
                     churn ? format_double(
                                 steady_state_fraction(result,
                                                       options.max_rounds),
                                 3)
                           : "1.000",
                     format_double(detaches.median(), 0)});
      // Headline scalars: the churn cells' steady-state fractions are
      // the figure's acceptance signal (hybrid >= greedy under churn).
      const std::string prefix =
          (algorithm == AlgorithmKind::kGreedy ? std::string("greedy")
                                               : std::string("hybrid")) +
          (churn ? "_churn" : "_no_churn");
      bench_json.add_scalar(prefix + "_median_rounds",
                            result.median_rounds());
      if (churn)
        bench_json.add_scalar(
            prefix + "_steady_state_fraction",
            steady_state_fraction(result, options.max_rounds));
    }
  }
  bench::print_table("Figure 4 — BiCorr, with and without churn", table,
                     options, "fig4");

  // Extension: the same comparison on the uncorrelated bimodal workload,
  // where the paper expects the gap to shrink (no systematic conflict).
  Table extension({"algorithm", "churn", "median rounds",
                   "steady-state fraction"});
  for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
    for (bool churn : {false, true}) {
      const auto result =
          run_cell(algorithm, churn, WorkloadKind::kBiUnCorr, options);
      extension.add_row(
          {to_string(algorithm), churn ? "yes" : "no",
           format_convergence_cell(result),
           churn ? format_double(
                       steady_state_fraction(result, options.max_rounds), 3)
                 : "1.000"});
    }
  }
  bench::print_table("extension — BiUnCorr, with and without churn",
                     extension, options, "fig4_biuncorr");

  // The paper's Section 5.3 text generalizes the claim to "various
  // workloads": construction latency of both algorithms, no churn, on
  // all four. The hybrid advantage concentrates on the capacity-tight
  // workload (Tf1); see EXPERIMENTS.md for discussion.
  Table workloads({"workload", "greedy median rounds",
                   "hybrid median rounds"});
  for (auto kind : kAllWorkloads) {
    std::vector<std::string> row{to_string(kind)};
    for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
      ExperimentSpec spec;
      spec.population = bench::population_factory(kind, options.peers);
      spec.config.algorithm = algorithm;
      spec.config.oracle = OracleKind::kRandomDelay;
      spec.trials = options.trials;
      spec.max_rounds = options.max_rounds;
      spec.base_seed = options.seed;
      row.push_back(format_convergence_cell(run_experiment(spec)));
    }
    workloads.add_row(std::move(row));
  }
  bench::print_table("greedy vs hybrid across all workloads (no churn)",
                     workloads, options, "fig4_workloads");

  bench_json.add_table("fig4", table);
  bench_json.add_table("fig4_biuncorr", extension);
  bench_json.add_table("fig4_workloads", workloads);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
