// Ablation of the design choices DESIGN.md calls out:
//
//   1. Orphaning displacement — our addition to the paper's described
//      move set (a strictly laxer child yields its slot when adoption is
//      impossible). Without it both algorithms deadlock on the
//      capacity-tight Tf1 workload, so the paper's own convergence
//      results imply some equivalent unstated mechanism.
//   2. Maintenance patience — the hybrid damping ("wait for a
//      maintenance timeout") versus knee-jerk reaction.
//   3. Orphan timeout — how long a peer waits before contacting the
//      source directly.
#include <iostream>

#include "bench/bench_util.hpp"

namespace lagover {
namespace {

ExperimentResult run_cell(const bench::BenchOptions& options,
                          WorkloadKind workload, AlgorithmKind algorithm,
                          bool orphaning, int patience, int timeout,
                          int knowledge_lag = 0) {
  ExperimentSpec spec;
  spec.population = bench::population_factory(workload, options.peers);
  spec.config.algorithm = algorithm;
  spec.config.orphaning_displacement = orphaning;
  spec.config.maintenance_patience = patience;
  spec.config.timeout_rounds = timeout;
  spec.config.knowledge_lag = knowledge_lag;
  spec.trials = options.trials;
  spec.max_rounds = options.max_rounds;
  spec.base_seed = options.seed;
  return run_experiment(spec);
}

int run(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  std::cout << "# Ablations (Oracle Random-Delay, " << options.peers
            << " peers, median of " << options.trials << ")\n";

  bench::BenchJson bench_json("bench_ablation", options);
  bench::TelemetryExport telemetry_export(options);

  {
    Table table({"workload", "algorithm", "with orphaning displacement",
                 "without (paper's literal moves)"});
    for (auto workload : {WorkloadKind::kTf1, WorkloadKind::kBiCorr}) {
      for (auto algorithm :
           {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
        const auto with_move =
            run_cell(options, workload, algorithm, true, 1, 4);
        const auto without =
            run_cell(options, workload, algorithm, false, 1, 4);
        table.add_row({to_string(workload), to_string(algorithm),
                       format_convergence_cell(with_move),
                       format_convergence_cell(without)});
        // The acceptance-relevant cell: Tf1 is where the literal move
        // set deadlocks without displacement.
        if (workload == WorkloadKind::kTf1 &&
            algorithm == AlgorithmKind::kHybrid) {
          bench_json.add_scalar("orphaning.tf1_hybrid_with_median",
                                with_move.median_rounds());
          bench_json.add_scalar("orphaning.tf1_hybrid_without_median",
                                without.median_rounds());
          bench_json.add_count("orphaning.tf1_hybrid_without_failures",
                               static_cast<std::uint64_t>(without.failures));
        }
      }
    }
    bench::print_table("ablation 1 — orphaning displacement", table, options,
                       "ablation_orphaning");
    bench_json.add_table("ablation_orphaning", table);
    telemetry_export.sample(1.0);
  }

  {
    Table table({"patience (rounds)", "hybrid Tf1", "hybrid BiCorr"});
    for (int patience : {0, 1, 2, 4, 8}) {
      const auto tf1 = run_cell(options, WorkloadKind::kTf1,
                                AlgorithmKind::kHybrid, true, patience, 4);
      const auto bicorr = run_cell(options, WorkloadKind::kBiCorr,
                                   AlgorithmKind::kHybrid, true, patience, 4);
      table.add_row({std::to_string(patience),
                     format_convergence_cell(tf1),
                     format_convergence_cell(bicorr)});
    }
    bench::print_table("ablation 2 — hybrid maintenance patience", table,
                       options, "ablation_patience");
    bench_json.add_table("ablation_patience", table);
    telemetry_export.sample(2.0);
  }

  {
    Table table({"orphan timeout (rounds)", "greedy Rand", "hybrid Rand",
                 "greedy Tf1", "hybrid Tf1"});
    for (int timeout : {1, 2, 4, 8, 16}) {
      std::vector<std::string> row{std::to_string(timeout)};
      for (auto workload : {WorkloadKind::kRand, WorkloadKind::kTf1})
        for (auto algorithm :
             {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid})
          row.push_back(format_convergence_cell(
              run_cell(options, workload, algorithm, true, 1, timeout)));
      // Row order: greedy Rand, hybrid Rand, greedy Tf1, hybrid Tf1.
      table.add_row(std::move(row));
    }
    bench::print_table("ablation 3 — orphan timeout before source contact",
                       table, options, "ablation_timeout");
    bench_json.add_table("ablation_timeout", table);
    telemetry_export.sample(3.0);
  }

  {
    // Section 2.1.3 realism: piggy-backed chain knowledge takes time to
    // propagate. Maintenance decides on DelayAt/Root as observed
    // `lag` rounds ago.
    Table table({"knowledge lag (rounds)", "greedy Tf1", "hybrid Tf1",
                 "hybrid BiCorr"});
    for (int lag : {0, 2, 4, 8}) {
      table.add_row(
          {std::to_string(lag),
           format_convergence_cell(run_cell(options, WorkloadKind::kTf1,
                                            AlgorithmKind::kGreedy, true, 1,
                                            4, lag)),
           format_convergence_cell(run_cell(options, WorkloadKind::kTf1,
                                            AlgorithmKind::kHybrid, true, 1,
                                            4, lag)),
           format_convergence_cell(run_cell(options, WorkloadKind::kBiCorr,
                                            AlgorithmKind::kHybrid, true, 1,
                                            4, lag))});
    }
    bench::print_table(
        "ablation 4 — stale chain knowledge (Section 2.1.3)", table, options,
        "ablation_knowledge");
    bench_json.add_table("ablation_knowledge", table);
    telemetry_export.sample(4.0);
  }
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
