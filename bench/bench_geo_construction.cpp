// Extension (paper Section 7 continued): does locality awareness help
// *construction wall-clock time*, not just traffic locality? Peers get
// synthetic coordinates; interaction durations include the pair's RTT
// (asynchronous engine + CoordinateLatency). Localities are the
// coordinate-space quadrants, so "same locality" really means "nearby".
// Sweeping the oracle's locality bias shows construction time falling
// as interactions stay local, on top of the cross-edge reduction.
#include <iostream>
#include <memory>

#include "bench/bench_util.hpp"
#include "core/async_engine.hpp"
#include "core/locality.hpp"
#include "stats/sample.hpp"

namespace lagover {
namespace {

/// Latency from a fixed coordinate assignment (shared with the locality
/// labelling, unlike CoordinateLatency's internal random points).
class FixedPointLatency final : public net::LatencyModel {
 public:
  struct Point {
    double x;
    double y;
  };

  FixedPointLatency(std::vector<Point> points, double base, double scale)
      : points_(std::move(points)), base_(base), scale_(scale) {}

  double latency(net::Address from, net::Address to, Rng&) override {
    const Point& a = points_.at(from);
    const Point& b = points_.at(to);
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return base_ + scale_ * std::sqrt(dx * dx + dy * dy);
  }

 private:
  std::vector<Point> points_;
  double base_;
  double scale_;
};

int run(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  std::cout << "# geographic construction (async hybrid, RTT-dependent "
               "interaction durations, "
            << options.peers << " peers, median of " << options.trials
            << ")\n# locality = coordinate quadrant; RTT = 0.05 + 2.0 * "
               "distance\n";

  bench::BenchJson bench_json("bench_geo_construction", options);
  bench::TelemetryExport telemetry_export(options);

  Table table({"locality bias", "median construction time",
               "cross-locality edges"});
  double time_at_zero = -1.0;
  double time_at_mid = -1.0;
  double cross_at_mid = -1.0;
  for (double bias : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    Sample times;
    Sample cross;
    for (int trial = 0; trial < options.trials; ++trial) {
      const std::uint64_t seed =
          options.seed + static_cast<std::uint64_t>(trial) * 7919;
      // Coordinates for source (address 0) + consumers.
      Rng coordinate_rng(seed ^ 0x9E0ULL);
      std::vector<FixedPointLatency::Point> points(options.peers + 1);
      for (auto& point : points)
        point = {coordinate_rng.uniform01(), coordinate_rng.uniform01()};
      LocalityMap localities(options.peers + 1, 0);
      for (std::size_t id = 1; id <= options.peers; ++id)
        localities[id] = (points[id].x < 0.5 ? 0 : 1) +
                         (points[id].y < 0.5 ? 0 : 2);

      WorkloadParams params;
      params.peers = options.peers;
      params.seed = seed;
      AsyncConfig config;
      config.algorithm = AlgorithmKind::kHybrid;
      config.min_interaction_time = 0.2;
      config.max_interaction_time = 0.6;
      config.network_latency =
          std::make_shared<FixedPointLatency>(points, 0.05, 2.0);
      config.seed = seed;
      AsyncEngine engine(generate_workload(WorkloadKind::kBiUnCorr, params),
                         config);
      engine.set_oracle(std::make_unique<LocalityBiasedOracle>(
          OracleKind::kRandomDelay, localities, bias));
      const auto converged = engine.run_until_converged(50000.0);
      if (!converged.has_value()) continue;
      times.add(*converged);
      cross.add(compute_locality_metrics(engine.overlay(), localities)
                    .cross_fraction);
    }
    table.add_row({format_double(bias, 1),
                   times.empty() ? "DNC" : format_double(times.median(), 1),
                   cross.empty()
                       ? "-"
                       : format_double(cross.median() * 100.0, 1) + "%"});
    if (bias == 0.0) time_at_zero = times.empty() ? -1.0 : times.median();
    if (bias == 0.5) {
      time_at_mid = times.empty() ? -1.0 : times.median();
      cross_at_mid = cross.empty() ? -1.0 : cross.median();
    }
    telemetry_export.sample(bias);
  }
  bench::print_table("construction time under geographic RTTs", table,
                     options, "geo");
  bench_json.add_scalar("construction_time_bias0", time_at_zero);
  bench_json.add_scalar("construction_time_bias05", time_at_mid);
  bench_json.add_scalar("cross_fraction_bias05", cross_at_mid);
  bench_json.add_table("geo", table);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  std::cout << "\nshape: moderate locality bias speeds construction "
               "(interactions round-trip with nearby peers) while "
               "slashing cross-locality edges; extreme bias narrows the "
               "partner pool enough to cost retries — a genuine "
               "trade-off curve with an interior sweet spot.\n";
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
