// Overload-resilience sweep (flash crowds vs the capacity model): a
// fixed set of established subscribers runs live dissemination under a
// per-relay forwarding budget; a join storm then multiplies the
// population 10x in a single tick. The sweep crosses storm {off, on} x
// relay budget {constrained, relaxed} x defenses {off, on} x
// construction algorithm {greedy, hybrid}.
//
//   defenses off — the budget still binds (physics), but drops are
//     arbitrary tail drops, rejected orphans stampede the Oracle, and
//     starved children sit and starve: the established subscribers'
//     deadline-miss rate collapses with the crowd.
//   defenses on — Oracle admission control (retry-after + breaker)
//     spreads the stampede, relays shed deadline-aware (most slack l_i
//     first) with reduced fanout while degraded, and starved children
//     re-parent through the suspicion/failover ladder: the miss rate
//     stays within a bounded factor of the uncongested baseline.
//
// The headline metric is the established-subscriber deadline-miss rate:
// the fraction of (measured item, established subscriber) pairs that
// never arrived or arrived past the subscriber's staleness budget. The
// crowd's own staleness is not counted — absorbing latecomers gracefully
// must not be scored as damage to them.
#include <algorithm>
#include <iostream>
#include <memory>
#include <string>

#include "bench/bench_util.hpp"
#include "feed/live.hpp"
#include "stats/sample.hpp"
#include "workload/churn.hpp"

namespace lagover {
namespace {

/// Join-storm intensity: joiners = kCrowdMultiple x established.
constexpr int kCrowdMultiple = 10;
constexpr Round kWarmupRounds = 60;
constexpr Round kMeasuredRounds = 240;
/// Storm lands mid-measurement so both the hit and the recovery are in
/// the measured window.
constexpr Round kStormRound = kWarmupRounds + 40;

struct CellResult {
  Sample miss_rate;
  Sample on_time;
  std::uint64_t shed = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t starvation_detaches = 0;
  std::uint64_t degraded_ticks = 0;
  std::uint64_t oracle_rejected = 0;
  std::uint64_t oracle_stale_served = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t audit_violations = 0;
};

CellResult run_cell(bool storm, bool defended, std::uint32_t budget,
                    AlgorithmKind algorithm,
                    const bench::BenchOptions& options) {
  // The established subscribers are ids 1..established; the crowd is the
  // parked tail. The baseline (storm off) parks the same crowd forever,
  // so the established set is identical across cells and the only
  // difference the storm cell adds is the crowd's arrival.
  const auto peers = static_cast<NodeId>(options.peers);
  const NodeId established =
      std::max<NodeId>(2, peers / (1 + kCrowdMultiple));
  CellResult cell;
  for (int trial = 0; trial < options.trials; ++trial) {
    const std::uint64_t seed =
        options.seed + static_cast<std::uint64_t>(trial) * 7919;
    WorkloadParams params;
    params.peers = options.peers;
    params.seed = seed;
    feed::LiveConfig config;
    config.engine.algorithm = algorithm;
    config.engine.oracle = OracleKind::kRandomDelay;
    config.engine.seed = seed;
    config.publish_every = 2;
    config.warmup_rounds = kWarmupRounds;
    config.measured_rounds = kMeasuredRounds;
    config.capacity.relay_budget = budget;
    config.capacity.queue_limit = 24;
    config.capacity.shedding = defended;
    // Chronic-only escalation (the CapacityConfig default, pinned here
    // because the sweep's shape depends on it): eager re-parenting
    // during the storm detach-thrashes and outdamages the overload.
    config.capacity.starve_limit = 30;
    if (defended) {
      // Oracle admission: sized so the steady established trickle is
      // admitted but a one-tick stampede of the whole crowd saturates
      // the window and spreads out through retry-after backoff.
      config.engine.admission.rate_limit =
          std::max(8.0, static_cast<double>(options.peers) * 0.1);
      config.engine.admission.window = 5.0;
      config.engine.admission.retry_after = 2.0;
    }
    for (NodeId id = established + 1; id <= peers; ++id)
      config.park_offline.push_back(id);
    if (storm)
      config.churn = [] {
        return std::make_unique<FlashCrowdChurn>(kStormRound);
      };
    const feed::LiveReport report = feed::run_live_dissemination(
        generate_workload(WorkloadKind::kBiUnCorr, params), config);

    // Established-subscriber deadline-miss rate: of the measured items
    // each established subscriber should have applied, the fraction that
    // never arrived by the horizon or arrived past its staleness budget.
    std::uint64_t on_time = 0;
    for (NodeId id = 1; id <= established; ++id) {
      const feed::LiveNodeStats& stats = report.nodes[id - 1];
      on_time += stats.deliveries - stats.late_deliveries;
    }
    const double expected = static_cast<double>(report.items_published) *
                            static_cast<double>(established);
    cell.miss_rate.add(
        expected <= 0.0
            ? 0.0
            : std::clamp(1.0 - static_cast<double>(on_time) / expected, 0.0,
                         1.0));
    cell.on_time.add(report.on_time_fraction);
    cell.shed += report.shed_items;
    cell.queue_drops += report.queue_drops;
    cell.starvation_detaches += report.starvation_detaches;
    cell.degraded_ticks += report.degraded_relay_ticks;
    cell.oracle_rejected += report.oracle_rejected;
    cell.oracle_stale_served += report.oracle_stale_served;
    cell.breaker_trips += report.oracle_breaker_trips;
    cell.audit_violations += report.audit_violations;
  }
  return cell;
}

int run(int argc, char** argv) {
  auto options = bench::BenchOptions::parse(argc, argv);
  std::cout << "# Overload sweep — " << kCrowdMultiple
            << "x flash-crowd join storm x relay budget x defenses"
               " (admission + shedding) off vs on; "
            << options.peers << " peers, " << options.trials
            << " trials per cell\n";

  bench::BenchJson bench_json("bench_overload", options);
  bench::TelemetryExport telemetry_export(options);
  std::uint64_t audit_violations = 0;

  Table table({"algorithm", "storm", "budget", "defenses", "miss rate",
               "shed", "queue drops", "re-parents", "degraded ticks",
               "rejected", "stale served", "breaker trips"});
  double miss_baseline = -1.0;
  double miss_storm_defended = -1.0;
  double miss_storm_undefended = -1.0;
  double sample_t = 0.0;
  for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
    for (bool storm : {false, true}) {
      for (std::uint32_t budget : {2U, 4U}) {
        for (bool defended : {false, true}) {
          const CellResult cell =
              run_cell(storm, defended, budget, algorithm, options);
          audit_violations += cell.audit_violations;
          telemetry_export.sample(sample_t += 1.0);
          table.add_row({to_string(algorithm), storm ? "10x" : "off",
                         std::to_string(budget), defended ? "on" : "off",
                         format_double(cell.miss_rate.median(), 3),
                         std::to_string(cell.shed),
                         std::to_string(cell.queue_drops),
                         std::to_string(cell.starvation_detaches),
                         std::to_string(cell.degraded_ticks),
                         std::to_string(cell.oracle_rejected),
                         std::to_string(cell.oracle_stale_served),
                         std::to_string(cell.breaker_trips)});
          if (algorithm == AlgorithmKind::kHybrid && budget == 2U) {
            if (!storm && defended) miss_baseline = cell.miss_rate.median();
            if (storm && defended)
              miss_storm_defended = cell.miss_rate.median();
            if (storm && !defended)
              miss_storm_undefended = cell.miss_rate.median();
          }
        }
      }
    }
  }
  bench::print_table(
      "flash-crowd sweep — established-subscriber deadline-miss rate"
      " (median)",
      table, options, "overload");

  bench_json.add_scalar("miss_rate_baseline", miss_baseline);
  bench_json.add_scalar("miss_rate_storm_defended", miss_storm_defended);
  bench_json.add_scalar("miss_rate_storm_undefended", miss_storm_undefended);
  bench_json.add_table("overload", table);
  bench_json.add_count("audit_violations", audit_violations);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
#ifdef LAGOVER_AUDIT
  if (audit_violations != 0) {
    std::cerr << "AUDIT FAILED: " << audit_violations
              << " invariant violation(s) across the sweep\n";
    return 1;
  }
  std::cout << "# audit: clean (0 violations)\n";
#endif
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
