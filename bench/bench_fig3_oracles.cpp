// Figure 3 reproduction: Greedy algorithm performance for the four
// Oracles across the four topological constraints, 120 peers, no churn,
// median of 5 trials. Expected shape (paper Section 5.2): Random-Delay
// (O3) best overall and always converges; Random (O1) converges but
// slower; the capacity-filtered oracles (O2a, O2b) can be slower than no
// information at all and sometimes never converge because they forbid
// the interactions that enable reconfiguration.
#include <iostream>

#include "bench/bench_util.hpp"

namespace lagover {
namespace {

constexpr OracleKind kOracles[] = {
    OracleKind::kRandom, OracleKind::kRandomCapacity,
    OracleKind::kRandomDelayCapacity, OracleKind::kRandomDelay};

int run(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  std::cout << "# Figure 3 — greedy construction latency by Oracle and "
               "workload ("
            << options.peers << " peers, no churn, median of "
            << options.trials << ")\n"
            << "# cells: median rounds to convergence; DNC = did not "
               "converge within "
            << options.max_rounds << " rounds; (k/n) = only k of n trials "
               "converged\n";

  bench::BenchJson bench_json("bench_fig3_oracles", options);
  bench::TelemetryExport telemetry_export(options);

  Table table({"workload", "O1 Random", "O2a Rnd-Cap", "O2b Rnd-Del-Cap",
               "O3 Rnd-Delay"});
  Table oracle_stats({"workload", "oracle", "median rounds",
                      "oracle queries (median trial)", "empty results"});
  // The section's headline claim: O3 (Random-Delay) always converges;
  // DNC cells belong to the capacity-filtered oracles.
  std::uint64_t dnc_cells = 0;
  std::uint64_t o3_dnc_cells = 0;
  double cell_t = 0.0;
  for (auto kind : kAllWorkloads) {
    std::vector<std::string> row{to_string(kind)};
    for (auto oracle : kOracles) {
      ExperimentSpec spec;
      spec.population = bench::population_factory(kind, options.peers);
      spec.config.algorithm = AlgorithmKind::kGreedy;
      spec.config.oracle = oracle;
      spec.trials = options.trials;
      spec.max_rounds = options.max_rounds;
      spec.base_seed = options.seed;
      const auto result = run_experiment(spec);
      row.push_back(format_convergence_cell(result));
      if (!result.any_converged()) {
        ++dnc_cells;
        if (oracle == OracleKind::kRandomDelay) ++o3_dnc_cells;
      }
      if (oracle == OracleKind::kRandomDelay)
        bench_json.add_scalar(
            "greedy." + to_string(kind) + ".o3_median_rounds",
            result.median_rounds());
      telemetry_export.sample(cell_t += 1.0);

      // How starved was the oracle? (middle trial as representative)
      const auto& trial = result.trials[result.trials.size() / 2];
      oracle_stats.add_row(
          {to_string(kind), paper_label(oracle),
           format_convergence_cell(result),
           std::to_string(trial.oracle_queries),
           std::to_string(trial.oracle_empty)});
    }
    table.add_row(std::move(row));
  }
  bench::print_table("Figure 3 — median construction latency (rounds)",
                     table, options, "fig3");
  bench::print_table("oracle starvation detail", oracle_stats, options,
                     "fig3_oracle_detail");

  // The paper's Section 5.2 remark: "Similar behavior of better
  // performance using Oracle Random-Delay was observed for experiments
  // conducted with the Hybrid LagOver construction algorithm."
  Table hybrid_table({"workload", "O1 Random", "O2a Rnd-Cap",
                      "O2b Rnd-Del-Cap", "O3 Rnd-Delay"});
  for (auto kind : kAllWorkloads) {
    std::vector<std::string> row{to_string(kind)};
    for (auto oracle : kOracles) {
      ExperimentSpec spec;
      spec.population = bench::population_factory(kind, options.peers);
      spec.config.algorithm = AlgorithmKind::kHybrid;
      spec.config.oracle = oracle;
      spec.trials = options.trials;
      spec.max_rounds = options.max_rounds;
      spec.base_seed = options.seed;
      row.push_back(format_convergence_cell(run_experiment(spec)));
    }
    hybrid_table.add_row(std::move(row));
  }
  bench::print_table("same sweep with the hybrid algorithm", hybrid_table,
                     options, "fig3_hybrid");

  bench_json.add_count("greedy_dnc_cells", dnc_cells);
  bench_json.add_count("greedy_o3_dnc_cells", o3_dnc_cells);
  bench_json.add_table("fig3", table);
  bench_json.add_table("fig3_oracle_detail", oracle_stats);
  bench_json.add_table("fig3_hybrid", hybrid_table);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
