// Declarative scenario driver: loads a "lagover.scenario.v1" JSON file
// (see src/workload/scenario.hpp for the schema), runs its trials, and
// emits the standard "lagover.bench.v1" summary. Experiments become
// data: a new robustness study is a new JSON file, not a new binary.
//
//   bench_scenario --scenario examples/scenario_byzantine.json
//
// --trials and --seed override the scenario file when passed explicitly;
// every other knob lives in the file. Deterministic: running the same
// file twice produces byte-identical bench JSON (CI asserts this).
#include <iostream>
#include <string>

#include "bench/bench_util.hpp"
#include "common/flags.hpp"
#include "stats/sample.hpp"
#include "workload/scenario.hpp"

namespace lagover {
namespace {

int run(int argc, char** argv) {
  auto options = bench::BenchOptions::parse(argc, argv);
  const Flags flags(argc, argv);
  const std::string path = flags.get_string("scenario", "");
  if (path.empty()) {
    std::cerr << "usage: bench_scenario --scenario <file.json> "
                 "[--trials N] [--seed N]\n";
    return 2;
  }
  workload::Scenario scenario;
  std::string error;
  if (!workload::load_scenario_file(path, scenario, &error)) {
    std::cerr << "bench_scenario: " << error << "\n";
    return 2;
  }
  // CLI overrides (only when passed explicitly; the file is the source
  // of truth otherwise). The shared options keep their own defaults for
  // the bench JSON "options" block.
  if (flags.has("trials")) scenario.trials = options.trials;
  if (flags.has("seed")) scenario.seed = options.seed;
  options.trials = scenario.trials;
  options.seed = scenario.seed;
  options.peers = scenario.workload_params.peers;

  std::cout << "# Scenario \"" << scenario.name << "\" ("
            << (scenario.async ? "async" : "rounds") << ", "
            << to_string(scenario.algorithm) << ", Oracle "
            << to_string(scenario.oracle) << ", "
            << scenario.workload_params.peers << " peers, "
            << scenario.trials << " trial(s), horizon " << scenario.horizon
            << ")\n";

  bench::BenchJson bench_json("bench_scenario", options);
  bench::TelemetryExport telemetry_export(options);

  Table table({"trial", "converged", "satisfied", "audit", "quarantines",
               "blacklists", "detaches", "domain crashes", "feed delivery",
               "feed late"});
  int converged_trials = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t blacklists = 0;
  std::uint64_t quarantine_detaches = 0;
  std::uint64_t domain_crashes = 0;
  std::uint64_t withheld_pushes = 0;
  std::uint64_t oracle_admitted = 0;
  std::uint64_t oracle_rejected = 0;
  std::uint64_t oracle_stale_served = 0;
  std::uint64_t oracle_breaker_trips = 0;
  std::uint64_t starvation_detaches = 0;
  std::uint64_t shed_pushes = 0;
  std::uint64_t storm_joiners = 0;
  Sample satisfied;
  Sample feed_delivery;
  Sample feed_late;
  for (int trial = 0; trial < scenario.trials; ++trial) {
    const workload::ScenarioTrialResult result =
        workload::run_scenario_trial(scenario, trial);
    if (result.converged) ++converged_trials;
    satisfied.add(result.satisfied_fraction);
    audit_violations += result.audit_violations;
    quarantines += result.quarantines;
    blacklists += result.blacklists;
    quarantine_detaches += result.quarantine_detaches;
    domain_crashes += result.domain_crashes;
    withheld_pushes += result.feed_withheld_pushes;
    oracle_admitted += result.oracle_admitted;
    oracle_rejected += result.oracle_rejected;
    oracle_stale_served += result.oracle_stale_served;
    oracle_breaker_trips += result.oracle_breaker_trips;
    starvation_detaches += result.starvation_detaches;
    shed_pushes += result.feed_shed_pushes;
    storm_joiners += result.storm_joiners;
    const bool has_feed = result.feed_delivery_ratio >= 0.0;
    if (has_feed) {
      feed_delivery.add(result.feed_delivery_ratio);
      feed_late.add(result.feed_late_fraction);
    }
    table.add_row({std::to_string(trial),
                   result.converged ? "yes" : "no",
                   format_double(result.satisfied_fraction, 3),
                   std::to_string(result.audit_violations),
                   std::to_string(result.quarantines),
                   std::to_string(result.blacklists),
                   std::to_string(result.quarantine_detaches),
                   std::to_string(result.domain_crashes),
                   has_feed ? format_double(result.feed_delivery_ratio, 3)
                            : "-",
                   has_feed ? format_double(result.feed_late_fraction, 3)
                            : "-"});
  }
  bench::print_table("scenario \"" + scenario.name + "\" per-trial results",
                     table, options, "scenario");

  bench_json.add_count("converged_trials",
                       static_cast<std::uint64_t>(converged_trials));
  bench_json.add_count("trials", static_cast<std::uint64_t>(scenario.trials));
  bench_json.add_scalar("median_satisfied_fraction", satisfied.median());
  bench_json.add_count("audit_violations", audit_violations);
  bench_json.add_count("quarantines", quarantines);
  bench_json.add_count("blacklists", blacklists);
  bench_json.add_count("quarantine_detaches", quarantine_detaches);
  bench_json.add_count("domain_crashes", domain_crashes);
  if (!feed_delivery.empty()) {
    bench_json.add_scalar("median_feed_delivery_ratio",
                          feed_delivery.median());
    bench_json.add_scalar("median_feed_late_fraction", feed_late.median());
    bench_json.add_count("feed_withheld_pushes", withheld_pushes);
  }
  // Overload counters appear only when the scenario declares the
  // section, so pre-overload scenario files keep byte-identical output.
  if (!scenario.overload.empty()) {
    bench_json.add_count("oracle_admitted", oracle_admitted);
    bench_json.add_count("oracle_rejected", oracle_rejected);
    bench_json.add_count("oracle_stale_served", oracle_stale_served);
    bench_json.add_count("oracle_breaker_trips", oracle_breaker_trips);
    bench_json.add_count("starvation_detaches", starvation_detaches);
    bench_json.add_count("shed_pushes", shed_pushes);
    bench_json.add_count("storm_joiners", storm_joiners);
  }
  bench_json.add_table("scenario", table);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
#ifdef LAGOVER_AUDIT
  if (audit_violations != 0) {
    std::cerr << "AUDIT FAILED: " << audit_violations
              << " invariant violation(s)\n";
    return 1;
  }
  std::cout << "# audit: clean (0 violations)\n";
#endif
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
