// Extension: end-to-end delivery continuity — construction, churn, and
// feed delivery running in one timeline (the situation a deployed RSS
// swarm actually faces; the paper evaluates construction in isolation).
// Sweeps churn intensity for both algorithms and reports the fraction
// of deliveries that met their staleness budget plus the steady-state
// freshness.
#include <iostream>
#include <memory>

#include "bench/bench_util.hpp"
#include "feed/live.hpp"
#include "workload/churn.hpp"

namespace lagover {
namespace {

int run(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::BenchJson json("bench_live_churn", options);
  bench::TelemetryExport telemetry(options);
  std::cout << "# live delivery under churn (BiUnCorr, " << options.peers
            << " peers, one item every 3 ticks, 400 measured ticks, "
               "median of "
            << options.trials << ")\n";

  double hybrid_on_time_paper_churn = 0.0;
  double sample_t = 0.0;
  Table table({"p_leave / p_join", "algorithm", "on-time deliveries",
               "mean freshness", "max staleness (median node-max)"});
  struct ChurnLevel {
    const char* label;
    double p_leave;
  };
  for (const ChurnLevel level : {ChurnLevel{"none", 0.0},
                                 ChurnLevel{"0.01 / 0.2 (paper)", 0.01},
                                 ChurnLevel{"0.04 / 0.2", 0.04},
                                 ChurnLevel{"0.08 / 0.2", 0.08}}) {
    for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
      Sample on_time;
      Sample freshness;
      Sample staleness;
      for (int trial = 0; trial < options.trials; ++trial) {
        const std::uint64_t seed =
            options.seed + static_cast<std::uint64_t>(trial) * 7919;
        WorkloadParams params;
        params.peers = options.peers;
        params.seed = seed;
        feed::LiveConfig config;
        config.engine.algorithm = algorithm;
        config.engine.seed = seed;
        if (level.p_leave > 0.0) {
          const double p_leave = level.p_leave;
          config.churn = [p_leave] {
            return std::make_unique<BernoulliChurn>(p_leave, 0.2);
          };
        }
        config.warmup_rounds = 100;
        config.measured_rounds = 400;
        const auto report = feed::run_live_dissemination(
            generate_workload(WorkloadKind::kBiUnCorr, params), config);
        on_time.add(report.on_time_fraction);
        freshness.add(report.freshness.mean_after(150.0));
        Sample node_max;
        for (const auto& node : report.nodes)
          node_max.add(node.max_staleness);
        staleness.add(node_max.median());
      }
      if (algorithm == AlgorithmKind::kHybrid && level.p_leave == 0.01)
        hybrid_on_time_paper_churn = on_time.median();
      telemetry.sample(sample_t += 1.0);
      table.add_row({level.label, to_string(algorithm),
                     format_double(on_time.median() * 100.0, 1) + "%",
                     format_double(freshness.median(), 3),
                     format_double(staleness.median(), 0)});
    }
  }
  bench::print_table("delivery continuity under churn", table, options,
                     "live_churn");
  std::cout << "\nshape: at the paper's churn rates delivery stays almost "
               "entirely within budget; timeliness decays gracefully as "
               "churn grows (reconfigurations cost catch-up staleness, "
               "not lost items).\n";
  json.add_table("live_churn", table);
  json.add_scalar("hybrid_on_time_at_paper_churn",
                  hybrid_on_time_paper_churn);
  telemetry.finish(json);
  if (!json.write(options)) return 1;
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
