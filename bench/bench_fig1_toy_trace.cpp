// Figure 1 reproduction: evolution of a LagOver on the paper's
// Section 3.2 toy system — source 0_3 and consumers
// a_2^1 b_2^3 c_2^3 d_2^1 e_2^2 f_2^3 g_2^3 h_2^3 i_2^3 j_2^4
// (ids 1..10 here). Prints the forest after each round so the group
// formation, coalescing, and maintenance detaches (the paper's g and i
// events) are visible, then the converged tree.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/engine.hpp"

namespace lagover {
namespace {

Population toy_population() {
  Population p;
  p.source_fanout = 3;  // 0_3
  p.consumers = {
      NodeSpec{1, Constraints{2, 1}},   // a_2^1
      NodeSpec{2, Constraints{2, 3}},   // b_2^3
      NodeSpec{3, Constraints{2, 3}},   // c_2^3
      NodeSpec{4, Constraints{2, 1}},   // d_2^1
      NodeSpec{5, Constraints{2, 2}},   // e_2^2
      NodeSpec{6, Constraints{2, 3}},   // f_2^3
      NodeSpec{7, Constraints{2, 3}},   // g_2^3
      NodeSpec{8, Constraints{2, 3}},   // h_2^3
      NodeSpec{9, Constraints{2, 3}},   // i_2^3
      NodeSpec{10, Constraints{2, 4}},  // j_2^4
  };
  return p;
}

int run(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  std::cout << "# Figure 1 — evolution of a LagOver (Section 3.2 toy "
               "system, greedy + maintenance)\n";

  bench::BenchJson bench_json("bench_fig1_toy_trace", options);
  bench::TelemetryExport telemetry_export(options);

  EngineConfig config;
  config.algorithm = AlgorithmKind::kGreedy;
  config.oracle = OracleKind::kRandomDelay;
  config.seed = options.seed;
  Engine engine(toy_population(), config);

  std::uint64_t maintenance_events = 0;
  engine.set_trace([&](const TraceEvent& event) {
    if (event.type == TraceEventType::kMaintenanceDetach) {
      ++maintenance_events;
      std::printf("round %llu: node %u discards its parent "
                  "(latency constraint violated)\n",
                  static_cast<unsigned long long>(event.round),
                  event.subject);
    }
  });

  Round converged_round = 0;
  const telemetry::PerfPhase perf_phase("construction");
  for (Round round = 1; round <= options.max_rounds; ++round) {
    engine.run_round();
    telemetry_export.sample(static_cast<double>(round));
    std::printf("\n--- after round %llu (satisfied %zu/%zu) ---\n",
                static_cast<unsigned long long>(round),
                engine.overlay().satisfied_count(),
                engine.overlay().online_count());
    std::cout << engine.overlay().to_ascii();
    if (engine.overlay().all_satisfied()) {
      converged_round = round;
      std::printf("\nconverged after %llu rounds, %llu maintenance "
                  "detach(es)\n",
                  static_cast<unsigned long long>(round),
                  static_cast<unsigned long long>(maintenance_events));
      break;
    }
  }
  if (converged_round == 0)
    std::puts("\ndid not converge within the round budget");
  bench_json.add_count("converged", converged_round > 0 ? 1 : 0);
  bench_json.add_count("convergence_round",
                       static_cast<std::uint64_t>(converged_round));
  bench_json.add_count("maintenance_detaches", maintenance_events);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  return converged_round > 0 ? 0 : 1;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
