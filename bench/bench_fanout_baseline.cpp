// Baseline from the paper's own argument (Section 3.4): pure fanout
// preference minimizes tree depth and average latency — but only
// *average*. On populations with individual latency constraints it
// leaves the strict consumers violated, which is precisely the gap the
// hybrid algorithm exists to close. We compare depth, connection speed,
// and constraint satisfaction.
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/engine.hpp"
#include "metrics/tree_metrics.hpp"

namespace lagover {
namespace {

struct Outcome {
  double rounds_to_all_connected = -1.0;
  double mean_depth = 0.0;
  double max_depth = 0.0;
  double satisfied_fraction = 0.0;
};

Outcome run_once(WorkloadKind kind, AlgorithmKind algorithm,
                 std::uint64_t seed, std::size_t peers, Round max_rounds) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  EngineConfig config;
  config.algorithm = algorithm;
  config.seed = seed;
  Engine engine(generate_workload(kind, params), config);

  Outcome outcome;
  const telemetry::PerfPhase perf_phase("construction");
  for (Round r = 0; r < max_rounds; ++r) {
    engine.run_round();
    const TreeMetrics metrics = compute_tree_metrics(engine.overlay());
    if (outcome.rounds_to_all_connected < 0 &&
        metrics.connected == engine.overlay().online_count())
      outcome.rounds_to_all_connected = static_cast<double>(engine.round());
    // The baseline never converges in the satisfied sense; stop once
    // connectivity is total and a settle window has passed.
    if (outcome.rounds_to_all_connected > 0 &&
        static_cast<double>(engine.round()) >=
            outcome.rounds_to_all_connected + 50)
      break;
    if (engine.overlay().all_satisfied()) break;
  }
  const TreeMetrics metrics = compute_tree_metrics(engine.overlay());
  outcome.mean_depth = metrics.mean_depth;
  outcome.max_depth = metrics.max_depth;
  outcome.satisfied_fraction = engine.overlay().satisfied_fraction();
  return outcome;
}

int run(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  std::cout << "# pure fanout preference vs latency-aware construction ("
            << options.peers << " peers, median of " << options.trials
            << ")\n";

  bench::BenchJson bench_json("bench_fanout_baseline", options);
  bench::TelemetryExport telemetry_export(options);

  Table table({"workload", "algorithm", "rounds to full connectivity",
               "mean depth", "max depth", "constraints satisfied"});
  double cell_t = 0.0;
  for (auto kind : {WorkloadKind::kBiCorr, WorkloadKind::kBiUnCorr}) {
    for (auto algorithm :
         {AlgorithmKind::kFanoutGreedy, AlgorithmKind::kGreedy,
          AlgorithmKind::kHybrid}) {
      Sample connected;
      Sample depth;
      Sample max_depth;
      Sample satisfied;
      for (int trial = 0; trial < options.trials; ++trial) {
        const auto outcome = run_once(
            kind, algorithm,
            options.seed + static_cast<std::uint64_t>(trial) * 7919,
            options.peers, options.max_rounds);
        if (outcome.rounds_to_all_connected > 0)
          connected.add(outcome.rounds_to_all_connected);
        depth.add(outcome.mean_depth);
        max_depth.add(outcome.max_depth);
        satisfied.add(outcome.satisfied_fraction);
      }
      table.add_row(
          {to_string(kind), to_string(algorithm),
           connected.empty() ? "DNC" : format_double(connected.median(), 0),
           format_double(depth.median(), 2),
           format_double(max_depth.median(), 0),
           format_double(satisfied.median() * 100.0, 1) + "%"});
      const std::string prefix =
          to_string(kind) + "." + to_string(algorithm);
      bench_json.add_scalar(prefix + ".satisfied_fraction",
                            satisfied.median());
      bench_json.add_scalar(prefix + ".mean_depth", depth.median());
      telemetry_export.sample(cell_t += 1.0);
    }
  }
  bench::print_table("fanout-only baseline vs constraint-aware algorithms",
                     table, options, "fanout_baseline");
  bench_json.add_table("fanout_baseline", table);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  std::cout << "\nshape: the fanout-only baseline connects everyone "
               "fastest (nothing ever has a reason to refuse an attach) "
               "but most constraints end up violated — and, notably, its "
               "trees are DEEPER than the constraint-aware ones: with "
               "latency invisible there is no maintenance pressure, so "
               "whatever shape the first random merges produced is "
               "final. The latency constraints are not just requirements "
               "the other algorithms satisfy; they are the force that "
               "flattens the tree at all.\n";
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
