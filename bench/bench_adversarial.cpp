// Section 3.3.1 reproduction: adversarial workloads — feasible instances
// that violate the sufficient condition and whose only feasible shapes
// put a lax-latency high-fanout hub upstream of stricter nodes. Expected
// shape: Greedy never converges (its ordering invariant forbids the only
// feasible configuration), Hybrid converges on every instance.
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/sufficiency.hpp"
#include "workload/adversarial.hpp"

namespace lagover {
namespace {

ExperimentResult run_cell(const Population& population,
                          AlgorithmKind algorithm,
                          const bench::BenchOptions& options) {
  ExperimentSpec spec;
  spec.population = [population](std::uint64_t) { return population; };
  spec.config.algorithm = algorithm;
  spec.config.oracle = OracleKind::kRandomDelay;
  spec.trials = options.trials;
  spec.max_rounds = options.max_rounds;
  spec.base_seed = options.seed;
  return run_experiment(spec);
}

int run(int argc, char** argv) {
  auto options = bench::BenchOptions::parse(argc, argv);
  if (options.max_rounds > 1000) options.max_rounds = 1000;

  std::cout << "# Section 3.3.1 — adversarial workloads: greedy cannot, "
               "hybrid can (Oracle Random-Delay, median of "
            << options.trials << ", budget " << options.max_rounds
            << " rounds)\n";

  bench::BenchJson bench_json("bench_adversarial", options);
  bench::TelemetryExport telemetry_export(options);
  int hybrid_converged = 0;
  int greedy_converged = 0;
  int instances = 0;

  Table table({"instance", "consumers", "sufficiency holds",
               "exactly feasible", "greedy", "hybrid"});

  auto add_instance = [&](const std::string& name,
                          const Population& population) {
    const auto greedy = run_cell(population, AlgorithmKind::kGreedy, options);
    const auto hybrid = run_cell(population, AlgorithmKind::kHybrid, options);
    table.add_row({name, std::to_string(population.consumers.size()),
                   sufficiency_condition(population).holds ? "yes" : "no",
                   exactly_feasible(population) ? "yes" : "no",
                   format_convergence_cell(greedy),
                   format_convergence_cell(hybrid)});
    ++instances;
    if (greedy.any_converged()) ++greedy_converged;
    if (hybrid.any_converged()) ++hybrid_converged;
  };

  add_instance("paper printed (infeasible as printed)",
               paper_printed_counterexample());
  add_instance("corrected counterexample", corrected_counterexample());
  for (int k : {1, 2, 4, 8, 16})
    add_instance("family k=" + std::to_string(k), adversarial_family(k));

  bench::print_table(
      "adversarial instances — construction latency (median rounds)", table,
      options, "adversarial");
  std::cout << "\nnote: the instance as printed in the paper is "
               "infeasible under its own delay-equals-depth model (see "
               "DESIGN.md), so both algorithms report DNC on it; the "
               "corrected instance preserves the intended phenomenon.\n";

  // Acceptance signal: hybrid converges on every feasible instance
  // (all but the paper-printed one), greedy on none of them.
  bench_json.add_count("instances", static_cast<std::uint64_t>(instances));
  bench_json.add_count("greedy_converged",
                       static_cast<std::uint64_t>(greedy_converged));
  bench_json.add_count("hybrid_converged",
                       static_cast<std::uint64_t>(hybrid_converged));
  bench_json.add_table("adversarial", table);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
