// Chaos sweep: how fast does the overlay heal as fault intensity grows?
// Every trial runs the canonical chaos plan — a message-drop window, a
// 10%-population partition, and an Oracle outage overlapping the
// partition tail — under the event-driven engine, sweeping the drop
// probability. Reported per (algorithm, intensity): how many trials
// reconverged (zero orphans, zero latency-constraint violations after
// the last window), the median time-to-reconverge from the last window
// end, the median peak orphan count, and the fault volume actually
// injected. Expected shape: time-to-reconverge grows with intensity,
// recovery rate stays 100% — faults delay the overlay, they do not
// wedge it.
#include <algorithm>
#include <iostream>
#include <memory>

#include "bench/bench_util.hpp"
#include "core/async_engine.hpp"
#include "core/snapshot.hpp"
#include "core/validator.hpp"
#include "fault/fault_injector.hpp"
#include "metrics/recovery.hpp"

namespace lagover {
namespace {

constexpr double kDropIntensities[] = {0.0, 0.1, 0.2, 0.4};

fault::FaultPlan chaos_plan(double drop_probability) {
  fault::FaultPlan plan;
  if (drop_probability > 0.0)
    plan.add(fault::FaultPlan::drop(30.0, 80.0, drop_probability));
  plan.add(fault::FaultPlan::partition(100.0, 150.0, 0.1))
      .add(fault::FaultPlan::oracle_outage(140.0, 190.0));
  return plan;
}

int run(int argc, char** argv) {
  auto options = bench::BenchOptions::parse(argc, argv);
  const double horizon =
      std::max(400.0, static_cast<double>(options.max_rounds));

  std::cout << "# Chaos sweep — canonical plan: drop [30,80), 10% "
               "partition [100,150), Oracle outage [140,190); "
            << options.peers << " peers, " << options.trials
            << " trials per cell, horizon " << horizon << "\n";

  bench::BenchJson bench_json("bench_chaos", options);
  bench::TelemetryExport telemetry_export(options);
  int total_recovered = 0;
  int total_cells = 0;
  Sample all_ttr;
#ifdef LAGOVER_AUDIT
  // Paper-invariant audit (docs/STATIC_ANALYSIS.md): every engine
  // audits once per sim-time unit; any violation anywhere in the sweep
  // fails the bench. The key is only emitted in audit builds so
  // release bench JSON stays byte-identical.
  std::uint64_t audit_violations = 0;
#endif

  Table table({"algorithm", "drop prob", "recovered", "median ttr",
               "peak orphans", "median drops"});
  for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
    for (double drop : kDropIntensities) {
      Sample ttr;
      Sample peaks;
      Sample drops;
      int recovered = 0;
      for (int trial = 0; trial < options.trials; ++trial) {
        const std::uint64_t seed =
            options.seed + static_cast<std::uint64_t>(trial) * 7919;
        WorkloadParams params;
        params.peers = options.peers;
        params.seed = seed;
        const fault::FaultPlan plan = chaos_plan(drop);
        AsyncConfig config;
        config.algorithm = algorithm;
        config.seed = seed;
        config.faults =
            std::make_shared<fault::FaultInjector>(plan, seed ^ 0xc4a05);
        AsyncEngine engine(generate_workload(WorkloadKind::kBiUnCorr, params),
                           config);
#ifdef LAGOVER_AUDIT
        engine.audit_bus().subscribe([](const InvariantViolation& v) {
          std::cerr << "AUDIT " << to_string(v.invariant) << " cause="
                    << v.cause << " node=" << v.node << " " << v.detail
                    << "\n";
        });
#endif
        telemetry::FlightRecorder* flight = telemetry_export.recorder();
        AuditBus::SubscriptionId flight_sub = 0;
        if (flight != nullptr) {
          flight->set_fault_plan(plan.to_string());
          flight_sub = attach_flight_recorder(engine.audit_bus(), *flight);
        }
        RecoveryRecorder recorder(engine.overlay(), plan);
        recorder.subscribe(engine.trace_bus());
        engine.set_sampler(1.0, [&](SimTime t) {
          recorder.sample(t);
          if (flight != nullptr)
            flight->note_snapshot(t, to_snapshot(engine.overlay()));
          telemetry_export.sample(t);
        });
        engine.run_for(horizon);
        if (flight != nullptr)
          engine.audit_bus().unsubscribe(flight_sub);
#ifdef LAGOVER_AUDIT
        audit_violations += engine.audit_violations();
#endif
        const double t = recorder.final_time_to_reconverge();
        if (t >= 0.0 && recorder.healthy_at_end()) {
          ++recovered;
          ttr.add(t);
        }
        // Peak orphans DURING the fault windows (the initial build-out,
        // when everyone is briefly an orphan, would drown the signal).
        double peak = 0.0;
        for (const auto& w : recorder.window_recoveries())
          peak = std::max(peak, static_cast<double>(w.peak_orphans));
        peaks.add(peak);
        drops.add(
            static_cast<double>(engine.faults()->stats().messages_dropped));
      }
      table.add_row({to_string(algorithm), format_double(drop, 2),
                     std::to_string(recovered) + "/" +
                         std::to_string(options.trials),
                     ttr.empty() ? "DNR" : format_double(ttr.median(), 1),
                     peaks.empty() ? "-" : format_double(peaks.median(), 1),
                     drops.empty() ? "-" : format_double(drops.median(), 0)});
      total_recovered += recovered;
      total_cells += options.trials;
      all_ttr.add_all(ttr.values());
    }
  }
  bench::print_table("reconvergence under swept fault intensity", table,
                     options, "chaos");
  bench_json.add_count("recovered_trials",
                       static_cast<std::uint64_t>(total_recovered));
  bench_json.add_count("total_trials",
                       static_cast<std::uint64_t>(total_cells));
  bench_json.add_scalar("recovery_rate",
                        total_cells == 0
                            ? 1.0
                            : static_cast<double>(total_recovered) /
                                  static_cast<double>(total_cells));
  bench_json.add_scalar("median_time_to_reconverge",
                        all_ttr.empty() ? -1.0 : all_ttr.median());
  bench_json.add_table("chaos", table);
#ifdef LAGOVER_AUDIT
  bench_json.add_count("audit_violations", audit_violations);
  if (audit_violations != 0) {
    std::cerr << "AUDIT FAILED: " << audit_violations
              << " invariant violation(s) across the sweep\n";
    return 1;
  }
  std::cout << "# audit: clean (" << audit_violations << " violations)\n";
#endif
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
