// Extension: pull-only vs push-capable source (paper Section 2.1.2
// considers both; Algorithm 2's source-child rules branch on it, and
// the paper focuses on pull-only because that is what RSS gives you).
// Compares (a) hybrid construction latency under the two source modes
// and (b) message-level staleness of dissemination over the same
// converged overlay with polls vs source pushes.
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/engine.hpp"
#include "feed/dissemination.hpp"
#include "stats/sample.hpp"

namespace lagover {
namespace {

int run(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  std::cout << "# pull-only vs push-capable source (hybrid, "
            << options.peers << " peers, median of " << options.trials
            << ")\n";

  bench::BenchJson bench_json("bench_push_source", options);
  bench::TelemetryExport telemetry_export(options);

  // (a) Construction latency under the two source modes.
  Table construction({"workload", "pull-only source", "push source"});
  for (auto kind : {WorkloadKind::kRand, WorkloadKind::kBiCorr}) {
    std::vector<std::string> row{to_string(kind)};
    for (auto mode : {SourceMode::kPullOnly, SourceMode::kPush}) {
      ExperimentSpec spec;
      spec.population = bench::population_factory(kind, options.peers);
      spec.config.algorithm = AlgorithmKind::kHybrid;
      spec.config.source_mode = mode;
      spec.trials = options.trials;
      spec.max_rounds = options.max_rounds;
      spec.base_seed = options.seed;
      row.push_back(format_convergence_cell(run_experiment(spec)));
    }
    construction.add_row(std::move(row));
  }
  bench::print_table("construction latency by source mode", construction,
                     options, "push_construction");
  bench_json.add_table("push_construction", construction);

  // (b) Dissemination staleness over one converged overlay.
  WorkloadParams params;
  params.peers = options.peers;
  params.seed = options.seed;
  EngineConfig config;
  config.seed = options.seed;
  Engine engine(generate_workload(WorkloadKind::kBiUnCorr, params), config);
  if (!engine.run_until_converged(options.max_rounds).has_value()) {
    std::cout << "construction did not converge; skipping dissemination\n";
    telemetry_export.finish(bench_json);
    bench_json.write(options);
    return 1;
  }
  Table staleness({"source", "source requests/unit", "empty requests",
                   "mean staleness (mean over nodes)",
                   "max staleness (max over nodes)", "violations"});
  for (bool push : {false, true}) {
    feed::DisseminationConfig dconfig;
    dconfig.seed = options.seed;
    dconfig.push_source = push;
    dconfig.source.publish_period = 2.5;
    const auto report =
        feed::run_dissemination(engine.overlay(), dconfig, 300.0);
    Sample means;
    double max_staleness = 0.0;
    for (const auto& node : report.nodes) {
      means.add(node.mean_staleness);
      max_staleness = std::max(max_staleness, node.max_staleness);
    }
    staleness.add_row(
        {push ? "push" : "pull-only",
         format_double(report.source_request_rate, 2),
         std::to_string(report.source_empty_requests),
         format_double(means.mean(), 2), format_double(max_staleness, 2),
         std::to_string(report.violations)});
    const std::string prefix = push ? "push" : "pull";
    bench_json.add_scalar(prefix + ".source_requests_per_unit",
                          report.source_request_rate);
    bench_json.add_scalar(prefix + ".mean_staleness", means.mean());
    bench_json.add_scalar(prefix + ".max_staleness", max_staleness);
    telemetry_export.sample(push ? 1.0 : 0.0);
  }
  bench::print_table("dissemination by source mode (same overlay)",
                     staleness, options, "push_dissemination");
  bench_json.add_table("push_dissemination", staleness);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  std::cout << "\nshape: a push source eliminates the source's request "
               "load entirely (no polls, so no empty polls), at "
               "essentially equal staleness — a poll arrives on average "
               "half a period after publication, a push exactly one hop "
               "later. Construction latency is essentially unchanged "
               "(the source rules differ only in who may sit at the "
               "source).\n";
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
