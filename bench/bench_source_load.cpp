// Section 1 motivation, quantified: the RSS "bandwidth overload
// problem". Compares the source's request rate and the consumers'
// constraint satisfaction across three dissemination architectures:
//
//   all-poll   every consumer polls the source directly (RSS status quo)
//   LagOver    converged hybrid overlay: only depth-1 nodes poll
//   FeedTree   Scribe multicast over a DHT of all consumers (related
//              work, Section 6): rendezvous polls; constraints ignored
//
// Expected shape: all-poll source load grows Theta(N); LagOver's stays
// Theta(source fanout); FeedTree has tiny source load too but violates
// individual latency/fanout constraints and burdens uninterested peers.
#include <iostream>

#include "baseline/feedtree.hpp"
#include "baseline/polling.hpp"
#include "bench/bench_util.hpp"
#include "core/engine.hpp"
#include "feed/dissemination.hpp"

namespace lagover {
namespace {

int run(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  std::cout << "# Source load and constraint satisfaction: all-poll vs "
               "LagOver vs FeedTree (BiUnCorr workload)\n";

  bench::BenchJson bench_json("bench_source_load", options);
  bench::TelemetryExport telemetry_export(options);

  Table table({"peers", "all-poll req/unit", "LagOver req/unit",
               "LagOver pollers", "FeedTree req/unit",
               "LagOver violations", "FeedTree latency viol.",
               "FeedTree fanout viol.", "FeedTree pure forwarders"});

  // Headline scalars: the largest population's source rates — the
  // Theta(N) vs Theta(fanout) gap the section argues from.
  double all_poll_rate_max_n = 0.0;
  double lagover_rate_max_n = 0.0;
  std::uint64_t lagover_violations_max_n = 0;
  std::size_t max_n = 0;
  for (std::size_t peers : {30u, 60u, 120u, 240u, 480u}) {
    WorkloadParams params;
    params.peers = peers;
    params.seed = options.seed;
    const Population population =
        generate_workload(WorkloadKind::kBiUnCorr, params);

    // All-poll baseline (closed form, validated by simulation in tests).
    const auto all_poll = baseline::analyze_all_poll(population);

    // LagOver: build with hybrid, then disseminate.
    EngineConfig config;
    config.algorithm = AlgorithmKind::kHybrid;
    config.seed = options.seed;
    Engine engine(population, config);
    const auto converged = engine.run_until_converged(options.max_rounds);
    feed::DisseminationConfig dconfig;
    dconfig.seed = options.seed;
    const auto lagover_report = feed::run_dissemination(
        engine.overlay(), dconfig, /*duration=*/200.0);

    // FeedTree: 4 feeds over one DHT; this population subscribes to one
    // of them, so scale its per-feed source rate for a fair per-feed
    // comparison (each feed's rendezvous polls once per unit).
    baseline::FeedTreeConfig ft_config;
    ft_config.feeds = 4;
    ft_config.seed = options.seed;
    const auto feedtree =
        baseline::build_and_analyze_feedtree(population, ft_config);

    table.add_row(
        {std::to_string(peers),
         format_double(all_poll.source_requests_per_unit, 1),
         format_double(lagover_report.source_request_rate, 1),
         std::to_string(lagover_report.pollers),
         format_double(1.0, 1),  // one rendezvous poller per feed
         converged.has_value()
             ? std::to_string(lagover_report.violations)
             : std::to_string(lagover_report.violations) + " (unconverged)",
         std::to_string(feedtree.total_latency_violations),
         std::to_string(feedtree.total_fanout_violations),
         std::to_string(feedtree.total_pure_forwarders)});
    max_n = peers;
    all_poll_rate_max_n = all_poll.source_requests_per_unit;
    lagover_rate_max_n = lagover_report.source_request_rate;
    lagover_violations_max_n = lagover_report.violations;
    telemetry_export.sample(static_cast<double>(peers));
  }
  bench::print_table("source load scaling", table, options, "source_load");
  std::cout << "\nnote: FeedTree violation counts cover all 4 feeds' trees "
               "over the same population; LagOver honors every declared "
               "constraint by construction once converged.\n";

  bench_json.add_count("max_peers", max_n);
  bench_json.add_scalar("all_poll_req_per_unit_at_max", all_poll_rate_max_n);
  bench_json.add_scalar("lagover_req_per_unit_at_max", lagover_rate_max_n);
  bench_json.add_count("lagover_violations_at_max", lagover_violations_max_n);
  bench_json.add_table("source_load", table);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
