// Ablation: idealized Oracles vs their distributed realizations.
//
//   DirectoryOracle      the paper's simulation model (instant, fresh)
//   DhtDirectoryOracle   registry at the owner of hash(feed) on a real
//                        message-passing Chord ring; records go stale
//                        between refreshes and every operation pays
//                        routing hops (Section 2.1.4's OpenDHT model)
//   GossipRandomOracle   Oracle Random via TTL random walks on an
//                        unstructured partial-view overlay
//
// Expected shape: construction latency degrades gracefully with registry
// staleness; the gossip realization tracks the ideal Random oracle.
#include <iostream>
#include <memory>

#include "bench/bench_util.hpp"
#include "core/engine.hpp"
#include "dht/directory.hpp"
#include "gossip/unstructured.hpp"

namespace lagover {
namespace {

struct Cell {
  Sample rounds;
  int failures = 0;
  std::string cost;
};

// Out-of-line so GCC cannot inline the short-literal assignment into
// run_with, which trips a -Wrestrict false positive (GCC bug 105651).
std::string describe_cost(const Oracle* oracle) {
  if (const auto* dht =
          dynamic_cast<const dht::DhtDirectoryOracle*>(oracle)) {
    return format_double(dht->costs().query_hops.mean(), 1) +
           " hops/query, " + std::to_string(dht->costs().ring_messages) +
           " ring msgs";
  }
  if (const auto* walker =
          dynamic_cast<const gossip::GossipRandomOracle*>(oracle)) {
    return std::to_string(walker->membership().walk_messages()) +
           " walk msgs";
  }
  return "-";
}

Cell run_with(const bench::BenchOptions& options, WorkloadKind kind,
              std::function<std::unique_ptr<Oracle>(std::uint64_t seed,
                                                    std::size_t peers)>
                  oracle_factory,
              std::string* cost_out = nullptr) {
  Cell cell;
  for (int trial = 0; trial < options.trials; ++trial) {
    const std::uint64_t seed =
        options.seed + static_cast<std::uint64_t>(trial) * 7919;
    WorkloadParams params;
    params.peers = options.peers;
    params.seed = seed;
    EngineConfig config;
    config.algorithm = AlgorithmKind::kHybrid;
    config.seed = seed;
    Engine engine(generate_workload(kind, params), config);
    auto oracle = oracle_factory(seed, options.peers);
    Oracle* raw = oracle.get();
    engine.set_oracle(std::move(oracle));
    const auto result = engine.run_until_converged(options.max_rounds);
    if (result.has_value())
      cell.rounds.add(static_cast<double>(*result));
    else
      ++cell.failures;
    if (trial == 0 && cost_out != nullptr) *cost_out = describe_cost(raw);
  }
  return cell;
}

std::string cell_to_string(const Cell& cell, int trials) {
  if (cell.rounds.empty()) return "DNC";
  std::string text = format_double(cell.rounds.median(), 0);
  if (cell.failures > 0)
    text += " (" + std::to_string(trials - cell.failures) + "/" +
            std::to_string(trials) + ")";
  return text;
}

int run(int argc, char** argv) {
  auto options = bench::BenchOptions::parse(argc, argv);
  // The DHT-backed oracle co-simulates a ring per trial; keep it light.
  if (options.peers > 60) options.peers = 60;
  if (options.max_rounds > 1500) options.max_rounds = 1500;

  std::cout << "# Oracle realizations ablation (hybrid, " << options.peers
            << " peers, BiUnCorr, median of " << options.trials << ")\n";

  bench::BenchJson bench_json("bench_oracle_realizations", options);
  bench::TelemetryExport telemetry_export(options);

  Table table({"oracle realization", "median rounds", "realization cost"});
  const WorkloadKind kind = WorkloadKind::kBiUnCorr;

  {
    std::string cost = "-";
    const Cell cell = run_with(
        options, kind,
        [](std::uint64_t, std::size_t) {
          return make_oracle(OracleKind::kRandomDelay);
        },
        &cost);
    table.add_row({"ideal Random-Delay (paper model)",
                   cell_to_string(cell, options.trials), cost});
    bench_json.add_scalar("ideal_random_delay_median",
                          cell.rounds.empty() ? -1.0 : cell.rounds.median());
  }
  for (int refresh : {8, 32, 128}) {
    std::string cost;
    const Cell cell = run_with(
        options, kind,
        [refresh](std::uint64_t seed, std::size_t) {
          dht::DhtOracleConfig config;
          config.ring_size = 8;
          config.refresh_every_queries = refresh;
          config.seed = seed;
          return std::make_unique<dht::DhtDirectoryOracle>(
              OracleKind::kRandomDelay, config);
        },
        &cost);
    table.add_row({"DHT directory, refresh every " + std::to_string(refresh) +
                       " queries",
                   cell_to_string(cell, options.trials), cost});
    bench_json.add_scalar(
        "dht_refresh_" + std::to_string(refresh) + "_median",
        cell.rounds.empty() ? -1.0 : cell.rounds.median());
    telemetry_export.sample(static_cast<double>(refresh));
  }
  {
    std::string cost = "-";
    const Cell cell = run_with(
        options, kind,
        [](std::uint64_t, std::size_t) {
          return make_oracle(OracleKind::kRandom);
        },
        &cost);
    table.add_row({"ideal Random (paper model)",
                   cell_to_string(cell, options.trials), cost});
  }
  {
    std::string cost;
    const Cell cell = run_with(
        options, kind,
        [](std::uint64_t seed, std::size_t peers) {
          gossip::GossipConfig config;
          config.seed = seed;
          return std::make_unique<gossip::GossipRandomOracle>(peers, config);
        },
        &cost);
    table.add_row({"gossip random walks (realizes Random)",
                   cell_to_string(cell, options.trials), cost});
    bench_json.add_scalar("gossip_random_median",
                          cell.rounds.empty() ? -1.0 : cell.rounds.median());
  }

  bench::print_table("idealized vs distributed oracle realizations", table,
                     options, "oracle_realizations");
  bench_json.add_table("oracle_realizations", table);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
