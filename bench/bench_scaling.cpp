// Extension: population scaling of construction latency (the paper
// evaluates 120 peers; we sweep 30..960 to show the trend). Greedy vs
// Hybrid with Oracle Random-Delay on the Rand workload. Expected shape:
// construction latency grows slowly (interactions are parallel across
// orphans), and Hybrid <= Greedy throughout.
#include <iostream>

#include "bench/bench_util.hpp"
#include "metrics/tree_metrics.hpp"

namespace lagover {
namespace {

int run(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  std::cout << "# population scaling (Rand workload, Oracle Random-Delay, "
               "median of "
            << options.trials << ")\n";

  bench::BenchJson bench_json("bench_scaling", options);
  bench::TelemetryExport telemetry_export(options);
  double cell = 0.0;

  Table table({"peers", "greedy median rounds", "hybrid median rounds",
               "hybrid mean depth", "hybrid max depth"});
  for (std::size_t peers : {30u, 60u, 120u, 240u, 480u, 960u}) {
    std::string cells[2];
    double mean_depth = 0.0;
    int max_depth = 0;
    int index = 0;
    for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
      ExperimentSpec spec;
      spec.population = bench::population_factory(WorkloadKind::kRand, peers);
      spec.config.algorithm = algorithm;
      spec.trials = options.trials;
      spec.max_rounds = options.max_rounds;
      spec.base_seed = options.seed;
      const auto result = run_experiment(spec);
      cells[index++] = format_convergence_cell(result);

      if (algorithm == AlgorithmKind::kHybrid) {
        // Shape of one representative converged tree.
        WorkloadParams params;
        params.peers = peers;
        params.seed = options.seed;
        EngineConfig config;
        config.algorithm = algorithm;
        config.seed = options.seed;
        Engine engine(generate_workload(WorkloadKind::kRand, params), config);
        if (engine.run_until_converged(options.max_rounds).has_value()) {
          const TreeMetrics metrics = compute_tree_metrics(engine.overlay());
          mean_depth = metrics.mean_depth;
          max_depth = metrics.max_depth;
        }
      }
    }
    table.add_row({std::to_string(peers), cells[0], cells[1],
                   format_double(mean_depth, 2), std::to_string(max_depth)});
    bench_json.add_scalar("peers_" + std::to_string(peers) + ".mean_depth",
                          mean_depth);
    // Coarse per-cell metric snapshots (no per-round hook here; the
    // engines run inside run_experiment).
    telemetry_export.sample(cell += 1.0);
  }
  bench::print_table("construction latency vs population", table, options,
                     "scaling");
  bench_json.add_table("scaling", table);
  telemetry_export.finish(bench_json);
  bench_json.write(options);
  return 0;
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
