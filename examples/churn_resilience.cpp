// Churn resilience scenario: readers continuously leave and rejoin
// (paper Section 5.3 model). Shows the satisfied fraction over time, a
// mass-failure shock, and recovery.
//
//   $ ./churn_resilience [--peers N] [--seed S] [--rounds R]
#include <cstdio>
#include <memory>

#include "common/flags.hpp"
#include "core/engine.hpp"
#include "workload/churn.hpp"
#include "workload/constraints.hpp"

namespace {

void print_sparkline(const std::vector<lagover::RoundStats>& history) {
  // 60-column coarse time series of the satisfied fraction.
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "#"};
  const std::size_t columns = 60;
  std::printf("satisfied fraction over time (one char ≈ %zu rounds):\n|",
              history.size() / columns + 1);
  for (std::size_t c = 0; c < columns; ++c) {
    const std::size_t index = c * history.size() / columns;
    const double fraction = history[index].satisfied_fraction;
    const auto level = static_cast<std::size_t>(fraction * 5.0);
    std::printf("%s", kLevels[level > 5 ? 5 : level]);
  }
  std::puts("|");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lagover;
  const Flags flags(argc, argv);
  const auto peers = static_cast<std::size_t>(flags.get_int("peers", 120));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  const auto rounds = static_cast<Round>(flags.get_int("rounds", 600));

  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  const Population population =
      generate_workload(WorkloadKind::kBiCorr, params);

  // --- steady churn ------------------------------------------------------
  {
    EngineConfig config;
    config.algorithm = AlgorithmKind::kHybrid;
    config.seed = seed;
    Engine engine(population, config);
    engine.set_churn(std::make_unique<BernoulliChurn>(0.01, 0.2));
    engine.set_record_history(true);
    for (Round r = 0; r < rounds; ++r) engine.run_round();

    std::printf("steady churn (p_leave=0.01, p_join=0.2), %zu peers, %llu "
                "rounds:\n",
                peers, static_cast<unsigned long long>(rounds));
    print_sparkline(engine.history());
    double burned_in = 0.0;
    int count = 0;
    for (const auto& stats : engine.history()) {
      if (stats.round <= rounds / 3) continue;
      burned_in += stats.satisfied_fraction;
      ++count;
    }
    std::printf("steady-state satisfied fraction: %.3f; maintenance "
                "detaches: %llu\n\n",
                burned_in / count,
                static_cast<unsigned long long>(
                    engine.maintenance_detaches()));
  }

  // --- mass failure and recovery -----------------------------------------
  {
    EngineConfig config;
    config.algorithm = AlgorithmKind::kHybrid;
    config.seed = seed + 1;
    Engine engine(population, config);
    engine.set_churn(std::make_unique<MassFailureChurn>(
        /*fail_round=*/rounds / 3, /*fail_fraction=*/0.4, /*p_join=*/0.25));
    engine.set_record_history(true);
    Round recovered_at = 0;
    for (Round r = 0; r < rounds; ++r) {
      engine.run_round();
      if (recovered_at == 0 && r > rounds / 3 &&
          engine.overlay().online_count() == peers &&
          engine.overlay().all_satisfied())
        recovered_at = engine.round();
    }
    std::printf("mass failure: 40%% of peers crash at round %llu\n",
                static_cast<unsigned long long>(rounds / 3));
    print_sparkline(engine.history());
    if (recovered_at != 0)
      std::printf("fully recovered (all %zu peers satisfied) at round "
                  "%llu — %llu rounds after the shock\n",
                  peers, static_cast<unsigned long long>(recovered_at),
                  static_cast<unsigned long long>(recovered_at - rounds / 3));
    else
      std::puts("not yet fully recovered within the horizon");
  }
  return 0;
}
