// RSS aggregation scenario — the paper's motivating application. A
// popular but resource-constrained blog publishes items; its readers
// self-organize into a LagOver instead of all polling the server.
//
//   $ ./rss_aggregator [--peers N] [--seed S] [--publish-period T]
//
// Prints the source's request load under (a) status-quo direct polling
// and (b) LagOver dissemination, plus per-reader staleness versus their
// declared tolerance.
#include <algorithm>
#include <cstdio>

#include "baseline/polling.hpp"
#include "common/flags.hpp"
#include "core/engine.hpp"
#include "feed/dissemination.hpp"
#include "workload/constraints.hpp"

int main(int argc, char** argv) {
  using namespace lagover;
  const Flags flags(argc, argv);
  const auto peers = static_cast<std::size_t>(flags.get_int("peers", 120));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const double publish_period = flags.get_double("publish-period", 3.0);

  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  const Population readers = generate_workload(WorkloadKind::kBiCorr, params);
  std::printf("blog with %zu readers; server fanout budget %d direct "
              "pollers\n\n",
              readers.size(), readers.source_fanout);

  // --- status quo: every reader polls the blog directly ----------------
  feed::DisseminationConfig dconfig;
  dconfig.seed = seed;
  dconfig.source.publish_period = publish_period;
  const auto direct = baseline::run_all_poll(readers, dconfig, 300.0);
  std::printf("status quo (all readers poll): %.1f requests/unit at the "
              "server, %llu of them returned nothing new\n",
              direct.source_request_rate,
              static_cast<unsigned long long>(direct.source_empty_requests));

  // --- LagOver: readers self-organize -----------------------------------
  EngineConfig config;
  config.algorithm = AlgorithmKind::kHybrid;
  config.oracle = OracleKind::kRandomDelay;
  config.seed = seed;
  Engine engine(readers, config);
  const auto converged = engine.run_until_converged(3000);
  if (!converged.has_value()) {
    std::puts("construction did not converge");
    return 1;
  }
  const auto lagover =
      feed::run_dissemination(engine.overlay(), dconfig, 300.0);
  std::printf("LagOver (converged in %llu rounds): %.1f requests/unit "
              "from %zu pollers, %llu push messages among readers\n",
              static_cast<unsigned long long>(*converged),
              lagover.source_request_rate, lagover.pollers,
              static_cast<unsigned long long>(lagover.push_messages));
  std::printf("server load reduction: %.0fx\n\n",
              direct.source_request_rate / lagover.source_request_rate);

  // --- per-reader staleness vs declared tolerance -----------------------
  std::size_t met = 0;
  double worst_ratio = 0.0;
  for (const auto& node : lagover.nodes) {
    if (node.constraint_met) ++met;
    worst_ratio = std::max(
        worst_ratio,
        node.max_staleness / static_cast<double>(node.latency_constraint));
  }
  std::printf("staleness budgets met: %zu/%zu readers (worst "
              "staleness/budget ratio %.2f)\n",
              met, lagover.nodes.size(), worst_ratio);

  std::puts("\nsample readers (staleness in time units):");
  for (std::size_t i = 0; i < lagover.nodes.size() && i < 6; ++i) {
    const auto& node = lagover.nodes[i];
    std::printf("  reader %-3u tolerance %-2d observed max %.2f mean %.2f "
                "(%llu items)\n",
                node.node, node.latency_constraint, node.max_staleness,
                node.mean_staleness,
                static_cast<unsigned long long>(node.items));
  }
  return 0;
}
