// lagover_cli — a command-line driver over the library, the way a
// downstream user would script it. Subcommands:
//
//   generate  --kind tf1|rand|bicorr|biuncorr --peers N [--seed S]
//             [--out FILE]             emit a population file
//   check     --population FILE        sufficiency + exact feasibility
//   construct --population FILE [--algorithm greedy|hybrid]
//             [--oracle o1|o2a|o2b|o3] [--seed S] [--max-rounds R]
//             [--snapshot FILE]        build a LagOver, report, save
//   validate  --snapshot FILE          diagnose a saved overlay
//   disseminate --snapshot FILE [--duration T] [--push-source]
//             replay feed items over a saved overlay, report staleness
//
// Exit code 0 = success/converged/feasible; 1 otherwise.
#include <fstream>
#include <iostream>

#include "common/flags.hpp"
#include "core/engine.hpp"
#include "core/snapshot.hpp"
#include "core/sufficiency.hpp"
#include "core/validator.hpp"
#include "feed/dissemination.hpp"
#include "workload/constraints.hpp"
#include "workload/population_io.hpp"

namespace lagover {
namespace {

int usage() {
  std::cerr << "usage: lagover_cli "
               "generate|check|construct|validate|disseminate [flags]\n"
               "(see the header comment of examples/lagover_cli.cpp)\n";
  return 2;
}

WorkloadKind parse_kind(const std::string& name) {
  if (name == "tf1") return WorkloadKind::kTf1;
  if (name == "rand") return WorkloadKind::kRand;
  if (name == "bicorr") return WorkloadKind::kBiCorr;
  if (name == "biuncorr") return WorkloadKind::kBiUnCorr;
  throw InvalidArgument("unknown workload kind: " + name);
}

OracleKind parse_oracle(const std::string& name) {
  if (name == "o1") return OracleKind::kRandom;
  if (name == "o2a") return OracleKind::kRandomCapacity;
  if (name == "o2b") return OracleKind::kRandomDelayCapacity;
  if (name == "o3") return OracleKind::kRandomDelay;
  throw InvalidArgument("unknown oracle (use o1|o2a|o2b|o3): " + name);
}

int cmd_generate(const Flags& flags) {
  WorkloadParams params;
  params.peers = static_cast<std::size_t>(flags.get_int("peers", 120));
  params.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const Population population =
      generate_workload(parse_kind(flags.get_string("kind", "rand")), params);
  const std::string text = to_population_text(population);
  const std::string out = flags.get_string("out", "");
  if (out.empty()) {
    std::cout << text;
  } else if (!save_population(population, out)) {
    std::cerr << "cannot write " << out << '\n';
    return 1;
  }
  return 0;
}

int cmd_check(const Flags& flags) {
  const Population population =
      load_population(flags.get_string("population", ""));
  const auto report = sufficiency_condition(population);
  std::cout << "consumers: " << population.size()
            << ", source fanout: " << population.source_fanout << '\n';
  std::cout << "sufficient condition: " << (report.holds ? "holds" : "fails");
  if (!report.holds)
    std::cout << " (first overloaded latency class: " << report.failing_level
              << ")";
  std::cout << '\n';
  const bool feasible = exactly_feasible(population);
  std::cout << "exactly feasible: " << (feasible ? "yes" : "no") << '\n';
  return feasible ? 0 : 1;
}

int cmd_construct(const Flags& flags) {
  const Population population =
      load_population(flags.get_string("population", ""));
  EngineConfig config;
  config.algorithm = flags.get_string("algorithm", "hybrid") == "greedy"
                         ? AlgorithmKind::kGreedy
                         : AlgorithmKind::kHybrid;
  config.oracle = parse_oracle(flags.get_string("oracle", "o3"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  Engine engine(population, config);
  const auto converged = engine.run_until_converged(
      static_cast<Round>(flags.get_int("max-rounds", 5000)));

  if (converged.has_value())
    std::cout << "converged in " << *converged << " rounds\n";
  else
    std::cout << "did not converge\n"
              << validate_overlay(engine.overlay()).to_string();

  const std::string snapshot_path = flags.get_string("snapshot", "");
  if (!snapshot_path.empty()) {
    std::ofstream out(snapshot_path);
    if (!out) {
      std::cerr << "cannot write " << snapshot_path << '\n';
      return 1;
    }
    write_snapshot(engine.overlay(), out);
    std::cout << "snapshot written to " << snapshot_path << '\n';
  }
  return converged.has_value() ? 0 : 1;
}

int cmd_validate(const Flags& flags) {
  std::ifstream in(flags.get_string("snapshot", ""));
  if (!in) {
    std::cerr << "cannot read snapshot\n";
    return 1;
  }
  const Overlay overlay = read_snapshot(in);
  const ValidationReport report = validate_overlay(overlay);
  std::cout << report.to_string();
  return report.converged() ? 0 : 1;
}

int cmd_disseminate(const Flags& flags) {
  std::ifstream in(flags.get_string("snapshot", ""));
  if (!in) {
    std::cerr << "cannot read snapshot\n";
    return 1;
  }
  const Overlay overlay = read_snapshot(in);
  feed::DisseminationConfig config;
  config.push_source = flags.get_bool("push-source", false);
  config.source.publish_period = flags.get_double("publish-period", 3.0);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto duration = flags.get_double("duration", 200.0);
  const auto report = feed::run_dissemination(overlay, config, duration);
  std::cout << "published " << report.items_published << " items over "
            << duration << " time units\n"
            << "source requests/unit: " << report.source_request_rate
            << " (" << report.source_empty_requests << " empty)\n"
            << "push messages: " << report.push_messages << '\n'
            << "staleness-budget violations: " << report.violations << '\n';
  return report.violations == 0 ? 0 : 1;
}

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Flags flags(argc - 1, argv + 1);
  try {
    if (command == "generate") return cmd_generate(flags);
    if (command == "check") return cmd_check(flags);
    if (command == "construct") return cmd_construct(flags);
    if (command == "validate") return cmd_validate(flags);
    if (command == "disseminate") return cmd_disseminate(flags);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  return usage();
}

}  // namespace
}  // namespace lagover

int main(int argc, char** argv) { return lagover::run(argc, argv); }
