// Adversarial workload walk-through (paper Section 3.3.1): an instance
// where the latency-greedy strategy provably cannot build a valid
// LagOver, while the hybrid strategy finds the unique feasible shape.
//
//   $ ./adversarial_workload [--k N] [--seed S]
#include <cstdio>

#include "common/flags.hpp"
#include "core/engine.hpp"
#include "core/sufficiency.hpp"
#include "workload/adversarial.hpp"

int main(int argc, char** argv) {
  using namespace lagover;
  const Flags flags(argc, argv);
  const int k = static_cast<int>(flags.get_int("k", 4));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  const Population population = adversarial_family(k);
  std::puts("adversarial instance (i_f^l notation):");
  std::printf("  source fanout %d\n", population.source_fanout);
  for (const auto& spec : population.consumers)
    std::printf("  %s\n", to_notation(spec).c_str());

  std::printf("\nsufficient condition holds: %s (it is sufficient, not "
              "necessary)\n",
              sufficiency_condition(population).holds ? "yes" : "no");
  const auto depths = feasible_depths(population);
  std::printf("exactly feasible: %s\n", depths.has_value() ? "yes" : "no");
  if (depths.has_value()) {
    std::puts("one feasible tree (from the exact checker):");
    const Overlay witness = build_witness_overlay(population, *depths);
    std::printf("%s", witness.to_ascii().c_str());
  }

  for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
    EngineConfig config;
    config.algorithm = algorithm;
    config.oracle = OracleKind::kRandomDelay;
    config.seed = seed;
    Engine engine(population, config);
    const auto converged = engine.run_until_converged(2000);
    std::printf("\n%s: ", to_string(algorithm).c_str());
    if (converged.has_value()) {
      std::printf("converged in %llu rounds\n",
                  static_cast<unsigned long long>(*converged));
      std::printf("%s", engine.overlay().to_ascii().c_str());
    } else {
      std::printf("did NOT converge (satisfied %zu/%zu after 2000 "
                  "rounds)\n",
                  engine.overlay().satisfied_count(),
                  engine.overlay().online_count());
    }
  }
  std::puts("\nwhy greedy fails: its invariant (a parent's latency "
            "constraint is never laxer than its child's) makes the hub — "
            "the only node with enough fanout — unreachable as a parent "
            "for the strict leaves.");
  return 0;
}
