// Multipath video delivery — the paper's Section 7 future-work
// application: "each peer participates in multiple LagOvers with
// different time constraints — one LagOver for each of the multiple
// paths." A video stream is striped into K substreams; a peer needs all
// K stripes, with successively laxer deadlines per stripe (later stripes
// can be buffered). Each stripe gets its own LagOver; a peer splits its
// upload budget across the K overlays.
//
//   $ ./multipath_video [--peers N] [--stripes K] [--seed S]
#include <cstdio>
#include <memory>
#include <vector>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "metrics/tree_metrics.hpp"

int main(int argc, char** argv) {
  using namespace lagover;
  const Flags flags(argc, argv);
  const auto peers = static_cast<std::size_t>(flags.get_int("peers", 90));
  const int stripes = static_cast<int>(flags.get_int("stripes", 3));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 21));

  // Per-peer totals: an upload budget (total fanout, split across
  // stripes) and a playback deadline for stripe 0; stripe s tolerates
  // `s` extra units of buffering.
  Rng rng(seed);
  std::vector<int> total_fanout(peers);
  std::vector<Delay> base_deadline(peers);
  for (std::size_t i = 0; i < peers; ++i) {
    total_fanout[i] = static_cast<int>(rng.uniform_int(0, 2)) * stripes +
                      stripes;  // multiples of K, so the split is even
    base_deadline[i] = static_cast<Delay>(rng.uniform_int(2, 6));
  }

  std::printf("video striped into %d substreams, %zu viewers; one LagOver "
              "per stripe\n\n",
              stripes, peers);

  std::vector<std::unique_ptr<Engine>> engines;
  engines.reserve(static_cast<std::size_t>(stripes));
  bool all_converged = true;
  for (int s = 0; s < stripes; ++s) {
    Population population;
    population.source_fanout = 4;
    for (std::size_t i = 0; i < peers; ++i)
      population.consumers.push_back(NodeSpec{
          static_cast<NodeId>(i + 1),
          Constraints{total_fanout[i] / stripes,
                      static_cast<Delay>(base_deadline[i] + s)}});
    EngineConfig config;
    config.algorithm = AlgorithmKind::kHybrid;
    config.oracle = OracleKind::kRandomDelay;
    config.seed = seed + static_cast<std::uint64_t>(s);
    engines.push_back(std::make_unique<Engine>(population, config));
    const auto converged = engines.back()->run_until_converged(4000);
    const TreeMetrics metrics =
        compute_tree_metrics(engines.back()->overlay());
    if (converged.has_value())
      std::printf("stripe %d: converged in %4llu rounds — max depth %d, "
                  "mean depth %.2f, %zu direct pollers\n",
                  s, static_cast<unsigned long long>(*converged),
                  metrics.max_depth, metrics.mean_depth,
                  metrics.source_children);
    else {
      std::printf("stripe %d: did not converge\n", s);
      all_converged = false;
    }
  }

  // A viewer can play smoothly iff every stripe arrives by its deadline.
  std::size_t smooth = 0;
  for (std::size_t i = 0; i < peers; ++i) {
    bool ok = true;
    for (const auto& engine : engines)
      ok = ok && engine->overlay().satisfied(static_cast<NodeId>(i + 1));
    if (ok) ++smooth;
  }
  std::printf("\nviewers receiving ALL %d stripes within deadline: %zu/%zu"
              "\n",
              stripes, smooth, peers);

  // Path diversity: how often a viewer has distinct parents across
  // stripes (the multipath property that gives resilience).
  std::size_t diverse = 0;
  for (std::size_t i = 0; i < peers; ++i) {
    const NodeId id = static_cast<NodeId>(i + 1);
    bool distinct = true;
    for (int a = 0; a < stripes && distinct; ++a)
      for (int b = a + 1; b < stripes && distinct; ++b)
        distinct =
            engines[static_cast<std::size_t>(a)]->overlay().parent(id) !=
            engines[static_cast<std::size_t>(b)]->overlay().parent(id);
    if (distinct) ++diverse;
  }
  std::printf("viewers with fully distinct parents across stripes "
              "(path diversity): %zu/%zu\n",
              diverse, peers);
  return all_converged ? 0 : 1;
}
