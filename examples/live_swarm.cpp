// Live swarm: the full story in one run — readers churn in and out
// while the LagOver is being built AND the feed keeps publishing. Shows
// per-tick freshness and the end-to-end delivery outcome (what a real
// RSS swarm's operators would monitor).
//
//   $ ./live_swarm [--peers N] [--seed S] [--p-leave P]
#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/flags.hpp"
#include "feed/live.hpp"
#include "workload/churn.hpp"
#include "workload/constraints.hpp"

int main(int argc, char** argv) {
  using namespace lagover;
  const Flags flags(argc, argv);
  const auto peers = static_cast<std::size_t>(flags.get_int("peers", 120));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 17));
  const double p_leave = flags.get_double("p-leave", 0.01);

  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;

  feed::LiveConfig config;
  config.engine.algorithm = AlgorithmKind::kHybrid;
  config.engine.seed = seed;
  if (p_leave > 0.0)
    config.churn = [p_leave] {
      return std::make_unique<BernoulliChurn>(p_leave, 0.2);
    };
  config.publish_every = 3;
  config.warmup_rounds = 100;
  config.measured_rounds = 500;

  std::printf("live swarm: %zu readers, churn p_leave=%.3f p_join=0.2, "
              "one item every %llu ticks\n",
              peers, p_leave,
              static_cast<unsigned long long>(config.publish_every));
  const auto report = feed::run_live_dissemination(
      generate_workload(WorkloadKind::kBiCorr, params), config);

  std::printf("\nmeasured window: %llu items published\n",
              static_cast<unsigned long long>(report.items_published));
  std::printf("deliveries: %llu (%.2f%% within each reader's staleness "
              "budget)\n",
              static_cast<unsigned long long>(report.total_deliveries),
              report.on_time_fraction * 100.0);

  // Freshness timeline, 60 columns.
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "#"};
  std::printf("\nfreshness over time (fraction of readers within budget):"
              "\n|");
  const std::size_t columns = 60;
  for (std::size_t c = 0; c < columns; ++c) {
    const std::size_t index = c * report.freshness.size() / columns;
    const double f = report.freshness.value_at(index);
    const auto level = static_cast<std::size_t>(f * 5.0);
    std::printf("%s", kLevels[std::min<std::size_t>(level, 5)]);
  }
  std::puts("|");

  // The worst-affected readers.
  auto worst = report.nodes;
  std::sort(worst.begin(), worst.end(),
            [](const feed::LiveNodeStats& a, const feed::LiveNodeStats& b) {
              return a.late_deliveries > b.late_deliveries;
            });
  std::puts("\nmost-affected readers:");
  for (std::size_t i = 0; i < worst.size() && i < 5; ++i) {
    const auto& node = worst[i];
    std::printf("  reader %-3u: %llu/%llu deliveries late, worst "
                "staleness %.0f ticks\n",
                node.node,
                static_cast<unsigned long long>(node.late_deliveries),
                static_cast<unsigned long long>(node.deliveries),
                node.max_staleness);
  }
  return 0;
}
