// Quickstart: build a LagOver for 120 consumers with heterogeneous
// latency/fanout constraints and inspect the result.
//
//   $ ./quickstart [--peers N] [--seed S]
//
// Walks through the whole public API surface: workload generation,
// sufficiency checking, construction with the hybrid algorithm and the
// Random-Delay oracle, and post-hoc tree metrics.
#include <cstdio>
#include <iostream>

#include "common/flags.hpp"
#include "core/engine.hpp"
#include "core/sufficiency.hpp"
#include "metrics/tree_metrics.hpp"
#include "workload/constraints.hpp"

int main(int argc, char** argv) {
  using namespace lagover;
  const Flags flags(argc, argv);
  const auto peers = static_cast<std::size_t>(flags.get_int("peers", 120));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  // 1. A population: every consumer declares a maximum fanout (how many
  //    children it will serve) and a latency constraint (max staleness
  //    in time units). Here: bimodal uncorrelated constraints.
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  const Population population =
      generate_workload(WorkloadKind::kBiUnCorr, params);
  std::printf("population: %zu consumers, source fanout %d\n",
              population.size(), population.source_fanout);

  // 2. Does a LagOver exist at all? The paper's sufficient condition,
  //    plus the exact feasibility check.
  const auto report = sufficiency_condition(population);
  std::printf("sufficiency condition holds: %s; exactly feasible: %s\n",
              report.holds ? "yes" : "no",
              exactly_feasible(population) ? "yes" : "no");

  // 3. Construct: hybrid algorithm (joint latency+capacity optimization)
  //    with Oracle Random-Delay — the paper's best configuration.
  EngineConfig config;
  config.algorithm = AlgorithmKind::kHybrid;
  config.oracle = OracleKind::kRandomDelay;
  config.seed = seed;
  Engine engine(population, config);
  const auto converged = engine.run_until_converged(/*max_rounds=*/3000);
  if (!converged.has_value()) {
    std::puts("did not converge within the round budget");
    return 1;
  }
  std::printf("converged in %llu rounds\n",
              static_cast<unsigned long long>(*converged));

  // 4. Inspect the dissemination tree.
  const TreeMetrics metrics = compute_tree_metrics(engine.overlay());
  std::printf("tree: %zu connected, max depth %d, mean depth %.2f\n",
              metrics.connected, metrics.max_depth, metrics.mean_depth);
  std::printf("source serves %zu direct pollers (fanout budget %d)\n",
              metrics.source_children, population.source_fanout);
  std::printf("min latency slack %d, mean slack %.2f, fanout utilization "
              "%.0f%%\n",
              metrics.min_slack, metrics.mean_slack,
              metrics.fanout_utilization * 100.0);
  std::printf("every constraint satisfied: %s\n",
              engine.overlay().all_satisfied() ? "yes" : "no");

  // 5. Per-node view for a few nodes, in the paper's i_f^l notation.
  std::puts("\nfirst few consumers:");
  for (NodeId id = 1; id <= 5 && id <= peers; ++id) {
    const auto& overlay = engine.overlay();
    std::printf("  %-8s parent=%-3u delay=%d (constraint %d)\n",
                to_notation(overlay.spec_of(id)).c_str(), overlay.parent(id),
                overlay.delay_at(id), overlay.latency_of(id));
  }
  return 0;
}
